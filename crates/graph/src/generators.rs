//! Graph generators: deterministic families (paths, cycles, grids, stars,
//! complete and complete-bipartite graphs, balanced trees) and random
//! families (Erdős–Rényi, random geometric / unit-disk, preferential
//! attachment, random d-regular-ish) used as base topologies for the
//! experiments.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// An empty graph on `n` active nodes.
pub fn empty(n: usize) -> Graph {
    Graph::new(n)
}

/// Path `0 – 1 – … – (n-1)`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| Edge::of(i - 1, i)))
}

/// Cycle on `n ≥ 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    Graph::from_edges(n, (0..n).map(|i| Edge::of(i, (i + 1) % n)))
}

/// Star with center `0` and `n-1` leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    Graph::from_edges(n, (1..n).map(|i| Edge::of(0, i)))
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.insert_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` (nodes `0..a` on one side, `a..a+b` on
/// the other).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in a..a + b {
            g.insert_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    g
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.insert_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.insert_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// Complete `arity`-ary tree with `n` nodes (node `i`'s parent is
/// `(i-1)/arity`).
pub fn balanced_tree(n: usize, arity: usize) -> Graph {
    assert!(arity >= 1);
    let mut g = Graph::new(n);
    for i in 1..n {
        g.insert_edge(NodeId::new(i), NodeId::new((i - 1) / arity));
    }
    g
}

/// Erdős–Rényi graph `G(n, p)`: every potential edge is present independently
/// with probability `p`.
///
/// Sampled with geometric skips over the linearized upper triangle — one
/// `Geometric(p)` draw per *generated* edge instead of one Bernoulli draw per
/// *potential* edge — so generation is `O(n + m)` expected, not `O(n²)`. The
/// dense-sampling cost made million-node footprints unreachable (5·10¹¹ RNG
/// calls at n = 1M); skip-sampling builds them in under a second. Fully
/// deterministic per seed, though seeds yield different graphs than the old
/// dense sampler did.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = Graph::new(n);
    if n < 2 || p <= 0.0 {
        return g;
    }
    if p >= 1.0 {
        for i in 0..n {
            for j in (i + 1)..n {
                g.insert_edge(NodeId::new(i), NodeId::new(j));
            }
        }
        return g;
    }
    // Walk the upper triangle (i < j) in row-major order; each Geometric(p)
    // variate is the gap to the next present edge. The cursor advance across
    // row ends amortizes to O(n) over the whole walk.
    let ln_q = (1.0 - p).ln();
    let (mut i, mut j) = (0usize, 0usize); // cursor sits just *before* (i, j+1)
    loop {
        // U ∈ (0, 1]: clamp away 0 so ln(U) is finite; skip ≥ 1 always.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip_f = (u.ln() / ln_q).floor() + 1.0;
        if skip_f > (n as f64) * (n as f64) {
            return g; // next edge lies past the triangle; avoid cast overflow
        }
        let mut skip = skip_f as usize;
        while skip > 0 {
            let row_left = n - 1 - j;
            if skip <= row_left {
                j += skip;
                skip = 0;
            } else {
                skip -= row_left;
                i += 1;
                j = i;
                if i >= n - 1 {
                    return g;
                }
            }
        }
        g.insert_edge(NodeId::new(i), NodeId::new(j));
    }
}

/// Erdős–Rényi graph with a target *average degree* `d̄` (sets `p = d̄/(n-1)`).
pub fn erdos_renyi_avg_degree<R: Rng + ?Sized>(n: usize, avg_degree: f64, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    let p = (avg_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
    erdos_renyi(n, p, rng)
}

/// Positions of `n` points placed uniformly at random in the unit square.
pub fn random_positions<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Unit-disk graph over the given positions: nodes are adjacent iff their
/// Euclidean distance is at most `radius`. This is the standard model of a
/// wireless ad-hoc network — one of the paper's motivating settings.
pub fn unit_disk(positions: &[(f64, f64)], radius: f64) -> Graph {
    let n = positions.len();
    let mut g = Graph::new(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                g.insert_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    g
}

/// Random geometric graph: `n` uniform points in the unit square, unit-disk
/// connectivity with the given radius.
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    let pos = random_positions(n, rng);
    unit_disk(&pos, radius)
}

/// Barabási–Albert-style preferential attachment: nodes arrive one by one and
/// connect to `m` existing nodes chosen with probability proportional to the
/// current degree (plus one, so isolated seeds can be chosen).
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1);
    let mut g = Graph::new(n);
    if n == 0 {
        return g;
    }
    // Repeated-endpoint list: node i appears degree(i)+1 times.
    let mut endpoints: Vec<usize> = vec![0];
    for i in 1..n {
        let mut targets = Vec::new();
        let mut tries = 0;
        while targets.len() < m.min(i) && tries < 50 * m {
            // `endpoints` always holds at least node 0; indexing draws the
            // same sequence as `SliceRandom::choose` without the `None` arm.
            let cand = endpoints[rng.gen_range(0..endpoints.len())];
            if cand != i && !targets.contains(&cand) {
                targets.push(cand);
            }
            tries += 1;
        }
        for &t in &targets {
            g.insert_edge(NodeId::new(i), NodeId::new(t));
            endpoints.push(t);
            endpoints.push(i);
        }
        endpoints.push(i);
    }
    g
}

/// Approximately d-regular random graph built from `d` random perfect
/// matchings on `n` nodes (duplicate edges are simply skipped, so degrees can
/// be slightly below `d`).
pub fn random_regular_ish<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..d {
        perm.shuffle(rng);
        for pair in perm.chunks(2) {
            if let [a, b] = pair {
                if a != b {
                    g.insert_edge(NodeId::new(*a), NodeId::new(*b));
                }
            }
        }
    }
    g
}

/// Named graph families, used by the experiment configuration files.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphFamily {
    /// Empty graph.
    Empty,
    /// Path graph.
    Path,
    /// Cycle graph.
    Cycle,
    /// Star graph.
    Star,
    /// Complete graph.
    Complete,
    /// Square-ish grid (`⌈√n⌉ × ⌈n/⌈√n⌉⌉`).
    Grid,
    /// Balanced binary tree.
    BinaryTree,
    /// Erdős–Rényi with the given expected average degree.
    ErdosRenyi {
        /// Target expected average degree `d̄` (edge probability `d̄/(n-1)`).
        avg_degree: f64,
    },
    /// Random geometric graph with the given connection radius.
    Geometric {
        /// Unit-disk connection radius.
        radius: f64,
    },
    /// Preferential attachment with `m` edges per arriving node.
    PreferentialAttachment {
        /// Number of edges each arriving node creates.
        m: usize,
    },
}

/// Entry cap of the process-wide footprint cache; reaching it clears the
/// cache (a full sweep grid re-uses far fewer distinct footprints than
/// this, so eviction only triggers across unrelated experiment suites).
const FOOTPRINT_CACHE_CAP: usize = 64;

type FootprintKey = (String, usize, u64, String);

/// Cached footprint plus whether it was built while a [`FootprintScope`]
/// was active (scoped entries are dropped when the last scope ends).
type FootprintEntry = (Arc<Graph>, bool);

fn footprint_cache() -> &'static Mutex<HashMap<FootprintKey, FootprintEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<FootprintKey, FootprintEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of currently live [`FootprintScope`] handles.
static ACTIVE_FOOTPRINT_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// RAII handle scoping the footprint cache to a sweep group: footprints
/// built while at least one scope is live are evicted when the *last*
/// scope drops, so a finished experiment grid releases its (potentially
/// large) base graphs instead of pinning them for the process lifetime.
///
/// Entries built outside any scope keep the old process-wide behavior —
/// they stay until the cache-cap eviction. Scopes may nest
/// and overlap freely (e.g. concurrent sweep cells of one grid); only the
/// final drop clears.
#[derive(Debug)]
pub struct FootprintScope(());

impl FootprintScope {
    /// Opens a scope; footprints built before the matching drop are
    /// released with it.
    pub fn new() -> FootprintScope {
        ACTIVE_FOOTPRINT_SCOPES.fetch_add(1, Ordering::SeqCst);
        FootprintScope(())
    }
}

impl Default for FootprintScope {
    fn default() -> Self {
        FootprintScope::new()
    }
}

impl Drop for FootprintScope {
    fn drop(&mut self) {
        if ACTIVE_FOOTPRINT_SCOPES.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut cache = footprint_cache()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache.retain(|_, (_, scoped)| !*scoped);
        }
    }
}

/// Number of footprints currently cached (scoped and unscoped).
pub fn footprint_cache_len() -> usize {
    footprint_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len()
}

/// Number of cached footprints owned by live [`FootprintScope`]s.
pub fn footprint_cache_scoped_len() -> usize {
    footprint_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .values()
        // DETERMINISM: order-independent count; hash order cannot leak.
        .filter(|(_, scoped)| *scoped)
        .count()
}

/// Process-wide `Arc`-cached footprint generator, keyed by
/// `(family, n, seed, label)`.
///
/// Dense sweep grids instantiate many cells over the *same* footprint graph
/// (same family, size, and experiment seed); regenerating it per cell made
/// footprint construction a dominant cost of grid experiments. This returns
/// the cached graph when the key was built before and otherwise runs
/// `build` — under the cache lock, so concurrent cells racing for the same
/// key build it exactly once and the rest wait for the `Arc`.
///
/// The caller's `build` closure must be a pure function of the key (the
/// usual shape: a generator call seeded from `(seed, label)`); the `label`
/// component exists precisely so call sites with different RNG streams but
/// identical family/n/seed stay distinct.
pub fn shared_footprint(
    family: &GraphFamily,
    n: usize,
    seed: u64,
    label: &str,
    build: impl FnOnce() -> Graph,
) -> Arc<Graph> {
    let key = (format!("{family:?}"), n, seed, label.to_string());
    let mut cache = footprint_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((g, _)) = cache.get(&key) {
        return Arc::clone(g);
    }
    if cache.len() >= FOOTPRINT_CACHE_CAP {
        cache.clear();
    }
    let g = Arc::new(build());
    let scoped = ACTIVE_FOOTPRINT_SCOPES.load(Ordering::SeqCst) > 0;
    cache.insert(key, (Arc::clone(&g), scoped));
    g
}

impl GraphFamily {
    /// Instantiates the family with `n` nodes using the provided RNG.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Graph {
        match self {
            GraphFamily::Empty => empty(n),
            GraphFamily::Path => path(n),
            GraphFamily::Cycle => cycle(n.max(3)),
            GraphFamily::Star => star(n.max(2)),
            GraphFamily::Complete => complete(n),
            GraphFamily::Grid => {
                let cols = (n as f64).sqrt().ceil() as usize;
                let rows = n.div_ceil(cols.max(1));
                grid(rows, cols.max(1))
            }
            GraphFamily::BinaryTree => balanced_tree(n, 2),
            GraphFamily::ErdosRenyi { avg_degree } => erdos_renyi_avg_degree(n, *avg_degree, rng),
            GraphFamily::Geometric { radius } => random_geometric(n, *radius, rng),
            GraphFamily::PreferentialAttachment { m } => preferential_attachment(n, *m, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn deterministic_families_have_expected_edge_counts() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(complete_bipartite(2, 3).num_edges(), 6);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(balanced_tree(7, 2).num_edges(), 6);
    }

    #[test]
    fn grid_degrees() {
        let g = grid(3, 3);
        assert_eq!(g.degree(NodeId::new(4)), 4, "center of a 3x3 grid");
        assert_eq!(g.degree(NodeId::new(0)), 2, "corner");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut r = rng();
        assert_eq!(erdos_renyi(10, 0.0, &mut r).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut r).num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_avg_degree_close_to_target() {
        let mut r = rng();
        let g = erdos_renyi_avg_degree(400, 10.0, &mut r);
        let avg = g.avg_degree();
        assert!((avg - 10.0).abs() < 2.5, "avg degree {avg} too far from 10");
    }

    #[test]
    fn erdos_renyi_skip_sampling_is_deterministic_and_in_range() {
        let g1 = erdos_renyi(300, 0.02, &mut rng());
        let g2 = erdos_renyi(300, 0.02, &mut rng());
        assert_eq!(g1.edge_vec(), g2.edge_vec(), "same seed, same graph");
        let g3 = erdos_renyi(300, 0.02, &mut ChaCha8Rng::seed_from_u64(8));
        assert_ne!(g1.edge_vec(), g3.edge_vec(), "different seed, new graph");
        for e in g1.edges() {
            let (a, b) = (e.u.index(), e.v.index());
            assert!(a < 300 && b < 300 && a != b);
        }
    }

    #[test]
    fn erdos_renyi_skip_sampling_hits_bernoulli_density() {
        // 2000 nodes, p = 4/1999: ~4000 expected edges, σ ≈ 63. A ±15%
        // window is ~9σ — effectively deterministic for a pinned seed.
        let g = erdos_renyi_avg_degree(2000, 4.0, &mut rng());
        let m = g.num_edges() as f64;
        assert!((3400.0..=4600.0).contains(&m), "edge count {m} off target");
    }

    #[test]
    fn unit_disk_radius_extremes() {
        let pos = vec![(0.0, 0.0), (0.5, 0.0), (1.0, 1.0)];
        let g_small = unit_disk(&pos, 0.1);
        assert_eq!(g_small.num_edges(), 0);
        let g_big = unit_disk(&pos, 2.0);
        assert_eq!(g_big.num_edges(), 3);
        let g_mid = unit_disk(&pos, 0.6);
        assert!(g_mid.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g_mid.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn geometric_graph_is_reproducible_per_seed() {
        let g1 = random_geometric(50, 0.2, &mut rng());
        let g2 = random_geometric(50, 0.2, &mut rng());
        assert_eq!(g1.edge_vec(), g2.edge_vec());
    }

    #[test]
    fn preferential_attachment_connected_and_sized() {
        let g = preferential_attachment(100, 2, &mut rng());
        assert!(g.num_edges() >= 100, "roughly m edges per node");
        assert_eq!(crate::algo::num_components(&g), 1);
    }

    #[test]
    fn random_regular_ish_degree_bound() {
        let g = random_regular_ish(40, 4, &mut rng());
        assert!(g.max_degree() <= 4);
        assert!(g.avg_degree() > 2.0);
    }

    #[test]
    fn family_enum_generates() {
        let mut r = rng();
        for fam in [
            GraphFamily::Empty,
            GraphFamily::Path,
            GraphFamily::Cycle,
            GraphFamily::Star,
            GraphFamily::Grid,
            GraphFamily::BinaryTree,
            GraphFamily::ErdosRenyi { avg_degree: 4.0 },
            GraphFamily::Geometric { radius: 0.2 },
            GraphFamily::PreferentialAttachment { m: 2 },
        ] {
            let g = fam.generate(20, &mut r);
            assert_eq!(g.num_nodes(), 20);
        }
        let k = GraphFamily::Complete.generate(6, &mut r);
        assert_eq!(k.num_edges(), 15);
    }

    #[test]
    fn shared_footprint_dedupes_by_key() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fam = GraphFamily::ErdosRenyi { avg_degree: 4.0 };
        let builds = AtomicUsize::new(0);
        let build = |seed: u64| {
            builds.fetch_add(1, Ordering::SeqCst);
            erdos_renyi(64, 0.05, &mut ChaCha8Rng::seed_from_u64(seed))
        };
        let a = shared_footprint(&fam, 64, 900, "sf-test", || build(900));
        let b = shared_footprint(&fam, 64, 900, "sf-test", || build(900));
        assert!(Arc::ptr_eq(&a, &b), "same key shares one graph");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "built exactly once");
        // A different label (distinct RNG stream) is a distinct key.
        let c = shared_footprint(&fam, 64, 900, "sf-test-2", || build(901));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(builds.load(Ordering::SeqCst), 2);
        // Different n and seed are distinct keys too.
        let d = shared_footprint(&fam, 65, 900, "sf-test", || build(902));
        let e = shared_footprint(&fam, 64, 901, "sf-test", || build(903));
        assert!(!Arc::ptr_eq(&a, &d) && !Arc::ptr_eq(&a, &e));
    }
}
