//! Graph generators: deterministic families (paths, cycles, grids, stars,
//! complete and complete-bipartite graphs, balanced trees) and random
//! families (Erdős–Rényi, random geometric / unit-disk, preferential
//! attachment, random d-regular-ish) used as base topologies for the
//! experiments.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// An empty graph on `n` active nodes.
pub fn empty(n: usize) -> Graph {
    Graph::new(n)
}

/// Path `0 – 1 – … – (n-1)`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| Edge::of(i - 1, i)))
}

/// Cycle on `n ≥ 3` nodes.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    Graph::from_edges(n, (0..n).map(|i| Edge::of(i, (i + 1) % n)))
}

/// Star with center `0` and `n-1` leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    Graph::from_edges(n, (1..n).map(|i| Edge::of(0, i)))
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.insert_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` (nodes `0..a` on one side, `a..a+b` on
/// the other).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in a..a + b {
            g.insert_edge(NodeId::new(i), NodeId::new(j));
        }
    }
    g
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.insert_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.insert_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// Complete `arity`-ary tree with `n` nodes (node `i`'s parent is
/// `(i-1)/arity`).
pub fn balanced_tree(n: usize, arity: usize) -> Graph {
    assert!(arity >= 1);
    let mut g = Graph::new(n);
    for i in 1..n {
        g.insert_edge(NodeId::new(i), NodeId::new((i - 1) / arity));
    }
    g
}

/// Erdős–Rényi graph `G(n, p)`: every potential edge is present independently
/// with probability `p`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.insert_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    g
}

/// Erdős–Rényi graph with a target *average degree* `d̄` (sets `p = d̄/(n-1)`).
pub fn erdos_renyi_avg_degree<R: Rng + ?Sized>(n: usize, avg_degree: f64, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    let p = (avg_degree / (n as f64 - 1.0)).clamp(0.0, 1.0);
    erdos_renyi(n, p, rng)
}

/// Positions of `n` points placed uniformly at random in the unit square.
pub fn random_positions<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Unit-disk graph over the given positions: nodes are adjacent iff their
/// Euclidean distance is at most `radius`. This is the standard model of a
/// wireless ad-hoc network — one of the paper's motivating settings.
pub fn unit_disk(positions: &[(f64, f64)], radius: f64) -> Graph {
    let n = positions.len();
    let mut g = Graph::new(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                g.insert_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    g
}

/// Random geometric graph: `n` uniform points in the unit square, unit-disk
/// connectivity with the given radius.
pub fn random_geometric<R: Rng + ?Sized>(n: usize, radius: f64, rng: &mut R) -> Graph {
    let pos = random_positions(n, rng);
    unit_disk(&pos, radius)
}

/// Barabási–Albert-style preferential attachment: nodes arrive one by one and
/// connect to `m` existing nodes chosen with probability proportional to the
/// current degree (plus one, so isolated seeds can be chosen).
pub fn preferential_attachment<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1);
    let mut g = Graph::new(n);
    if n == 0 {
        return g;
    }
    // Repeated-endpoint list: node i appears degree(i)+1 times.
    let mut endpoints: Vec<usize> = vec![0];
    for i in 1..n {
        let mut targets = Vec::new();
        let mut tries = 0;
        while targets.len() < m.min(i) && tries < 50 * m {
            // `endpoints` always holds at least node 0; indexing draws the
            // same sequence as `SliceRandom::choose` without the `None` arm.
            let cand = endpoints[rng.gen_range(0..endpoints.len())];
            if cand != i && !targets.contains(&cand) {
                targets.push(cand);
            }
            tries += 1;
        }
        for &t in &targets {
            g.insert_edge(NodeId::new(i), NodeId::new(t));
            endpoints.push(t);
            endpoints.push(i);
        }
        endpoints.push(i);
    }
    g
}

/// Approximately d-regular random graph built from `d` random perfect
/// matchings on `n` nodes (duplicate edges are simply skipped, so degrees can
/// be slightly below `d`).
pub fn random_regular_ish<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    let mut perm: Vec<usize> = (0..n).collect();
    for _ in 0..d {
        perm.shuffle(rng);
        for pair in perm.chunks(2) {
            if let [a, b] = pair {
                if a != b {
                    g.insert_edge(NodeId::new(*a), NodeId::new(*b));
                }
            }
        }
    }
    g
}

/// Named graph families, used by the experiment configuration files.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphFamily {
    /// Empty graph.
    Empty,
    /// Path graph.
    Path,
    /// Cycle graph.
    Cycle,
    /// Star graph.
    Star,
    /// Complete graph.
    Complete,
    /// Square-ish grid (`⌈√n⌉ × ⌈n/⌈√n⌉⌉`).
    Grid,
    /// Balanced binary tree.
    BinaryTree,
    /// Erdős–Rényi with the given expected average degree.
    ErdosRenyi {
        /// Target expected average degree `d̄` (edge probability `d̄/(n-1)`).
        avg_degree: f64,
    },
    /// Random geometric graph with the given connection radius.
    Geometric {
        /// Unit-disk connection radius.
        radius: f64,
    },
    /// Preferential attachment with `m` edges per arriving node.
    PreferentialAttachment {
        /// Number of edges each arriving node creates.
        m: usize,
    },
}

impl GraphFamily {
    /// Instantiates the family with `n` nodes using the provided RNG.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Graph {
        match self {
            GraphFamily::Empty => empty(n),
            GraphFamily::Path => path(n),
            GraphFamily::Cycle => cycle(n.max(3)),
            GraphFamily::Star => star(n.max(2)),
            GraphFamily::Complete => complete(n),
            GraphFamily::Grid => {
                let cols = (n as f64).sqrt().ceil() as usize;
                let rows = n.div_ceil(cols.max(1));
                grid(rows, cols.max(1))
            }
            GraphFamily::BinaryTree => balanced_tree(n, 2),
            GraphFamily::ErdosRenyi { avg_degree } => erdos_renyi_avg_degree(n, *avg_degree, rng),
            GraphFamily::Geometric { radius } => random_geometric(n, *radius, rng),
            GraphFamily::PreferentialAttachment { m } => preferential_attachment(n, *m, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn deterministic_families_have_expected_edge_counts() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(complete_bipartite(2, 3).num_edges(), 6);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(balanced_tree(7, 2).num_edges(), 6);
    }

    #[test]
    fn grid_degrees() {
        let g = grid(3, 3);
        assert_eq!(g.degree(NodeId::new(4)), 4, "center of a 3x3 grid");
        assert_eq!(g.degree(NodeId::new(0)), 2, "corner");
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut r = rng();
        assert_eq!(erdos_renyi(10, 0.0, &mut r).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut r).num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_avg_degree_close_to_target() {
        let mut r = rng();
        let g = erdos_renyi_avg_degree(400, 10.0, &mut r);
        let avg = g.avg_degree();
        assert!((avg - 10.0).abs() < 2.5, "avg degree {avg} too far from 10");
    }

    #[test]
    fn unit_disk_radius_extremes() {
        let pos = vec![(0.0, 0.0), (0.5, 0.0), (1.0, 1.0)];
        let g_small = unit_disk(&pos, 0.1);
        assert_eq!(g_small.num_edges(), 0);
        let g_big = unit_disk(&pos, 2.0);
        assert_eq!(g_big.num_edges(), 3);
        let g_mid = unit_disk(&pos, 0.6);
        assert!(g_mid.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g_mid.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn geometric_graph_is_reproducible_per_seed() {
        let g1 = random_geometric(50, 0.2, &mut rng());
        let g2 = random_geometric(50, 0.2, &mut rng());
        assert_eq!(g1.edge_vec(), g2.edge_vec());
    }

    #[test]
    fn preferential_attachment_connected_and_sized() {
        let g = preferential_attachment(100, 2, &mut rng());
        assert!(g.num_edges() >= 100, "roughly m edges per node");
        assert_eq!(crate::algo::num_components(&g), 1);
    }

    #[test]
    fn random_regular_ish_degree_bound() {
        let g = random_regular_ish(40, 4, &mut rng());
        assert!(g.max_degree() <= 4);
        assert!(g.avg_degree() > 2.0);
    }

    #[test]
    fn family_enum_generates() {
        let mut r = rng();
        for fam in [
            GraphFamily::Empty,
            GraphFamily::Path,
            GraphFamily::Cycle,
            GraphFamily::Star,
            GraphFamily::Grid,
            GraphFamily::BinaryTree,
            GraphFamily::ErdosRenyi { avg_degree: 4.0 },
            GraphFamily::Geometric { radius: 0.2 },
            GraphFamily::PreferentialAttachment { m: 2 },
        ] {
            let g = fam.generate(20, &mut r);
            assert_eq!(g.num_nodes(), 20);
        }
        let k = GraphFamily::Complete.generate(6, &mut r);
        assert_eq!(k.num_edges(), 15);
    }
}
