//! Recording and replaying dynamic graph sequences `G_0, G_1, G_2, …`.
//!
//! A [`DynamicGraphTrace`] stores a full sequence (as per-round edge deltas to
//! keep memory proportional to the amount of change) so that different
//! algorithms can be compared on *identical* adversarial schedules, and so
//! that experiments can be re-run deterministically.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};

/// The change applied by the adversary at the beginning of one round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphDelta {
    /// Edges inserted this round.
    pub inserted: Vec<Edge>,
    /// Edges removed this round.
    pub removed: Vec<Edge>,
    /// Nodes woken up this round.
    pub woken: Vec<NodeId>,
    /// Nodes deactivated (left the network) this round.
    pub deactivated: Vec<NodeId>,
}

impl GraphDelta {
    /// Creates an empty delta.
    pub fn new() -> GraphDelta {
        GraphDelta::default()
    }

    /// Records the insertion of the edge `{a, b}` (canonicalized, so
    /// `insert(u, v)` and `insert(v, u)` record the same change).
    pub fn insert(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.inserted.push(Edge::new(a, b));
        self
    }

    /// Records the removal of the edge `{a, b}` (canonicalized).
    pub fn remove(&mut self, a: NodeId, b: NodeId) -> &mut Self {
        self.removed.push(Edge::new(a, b));
        self
    }

    /// Records the wake-up (activation) of node `v`.
    pub fn wake(&mut self, v: NodeId) -> &mut Self {
        self.woken.push(v);
        self
    }

    /// Records the departure (deactivation) of node `v`.
    pub fn deactivate(&mut self, v: NodeId) -> &mut Self {
        self.deactivated.push(v);
        self
    }

    /// Builds a canonical delta from raw change lists: every edge is stored
    /// in canonical `{min, max}` order ([`Edge`] enforces this) and each of
    /// the four lists is sorted and deduplicated, so adversary-produced
    /// deltas cannot double-insert a change no matter how the endpoints were
    /// oriented when the change was recorded.
    ///
    /// An edge listed in both `inserted` and `removed` is kept in both: by
    /// the documented [`GraphDelta::apply`] order (insertions before
    /// removals) it ends up absent.
    pub fn from_changes(
        inserted: Vec<Edge>,
        removed: Vec<Edge>,
        woken: Vec<NodeId>,
        deactivated: Vec<NodeId>,
    ) -> GraphDelta {
        let mut delta = GraphDelta {
            inserted,
            removed,
            woken,
            deactivated,
        };
        delta.normalize();
        delta
    }

    /// Sorts and deduplicates all four change lists in place. [`Edge`]s are
    /// canonical by construction, so sorting + deduping is sufficient to
    /// collapse the same change recorded twice (e.g. once per endpoint by a
    /// node-churn adversary).
    pub fn normalize(&mut self) {
        self.inserted.sort_unstable();
        self.inserted.dedup();
        self.removed.sort_unstable();
        self.removed.dedup();
        self.woken.sort_unstable();
        self.woken.dedup();
        self.deactivated.sort_unstable();
        self.deactivated.dedup();
    }

    /// Computes the delta that transforms `from` into `to`.
    pub fn between(from: &Graph, to: &Graph) -> GraphDelta {
        assert_eq!(from.num_nodes(), to.num_nodes());
        let mut delta = GraphDelta::default();
        for e in to.edges() {
            if !from.has_edge(e.u, e.v) {
                delta.inserted.push(e);
            }
        }
        for e in from.edges() {
            if !to.has_edge(e.u, e.v) {
                delta.removed.push(e);
            }
        }
        for v in to.nodes() {
            match (from.is_active(v), to.is_active(v)) {
                (false, true) => delta.woken.push(v),
                (true, false) => delta.deactivated.push(v),
                _ => {}
            }
        }
        delta
    }

    /// Applies this delta to `g` in place.
    pub fn apply(&self, g: &mut Graph) {
        for &v in &self.woken {
            g.activate(v);
        }
        for e in &self.inserted {
            g.insert_edge(e.u, e.v);
        }
        for e in &self.removed {
            g.remove_edge(e.u, e.v);
        }
        for &v in &self.deactivated {
            g.deactivate(v);
        }
    }

    /// Returns the graph obtained by applying this delta to a copy of `prev`
    /// (the compatibility bridge from the delta-native adversary interface to
    /// the whole-graph one).
    pub fn materialize(&self, prev: &Graph) -> Graph {
        let mut g = prev.clone();
        self.apply(&mut g);
        g
    }

    /// Un-applies this delta in place: `g` must be the graph this delta was
    /// applied to, and the delta must be *tight* (every listed change really
    /// happened — no inserting of already-present edges, no removing of
    /// absent ones; [`GraphDelta::between`] and the window's realized deltas
    /// are tight by construction). After the call `g` is the pre-delta graph.
    pub fn unapply(&self, g: &mut Graph) {
        for e in &self.inserted {
            g.remove_edge(e.u, e.v);
        }
        for e in &self.removed {
            g.insert_edge(e.u, e.v);
        }
        for &v in &self.deactivated {
            g.activate(v);
        }
        for &v in &self.woken {
            // A node that woke this round was inactive (hence edge-free)
            // before; its gained edges were listed in `inserted` and are
            // already gone.
            g.deactivate(v);
        }
    }

    /// Total number of topological changes (edge insertions + deletions).
    pub fn num_edge_changes(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }

    /// Returns `true` if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.removed.is_empty()
            && self.woken.is_empty()
            && self.deactivated.is_empty()
    }
}

/// A recorded dynamic graph sequence, stored as an initial graph plus one
/// delta per subsequent round.
#[derive(Clone, Debug)]
pub struct DynamicGraphTrace {
    n: usize,
    initial: Graph,
    deltas: Vec<GraphDelta>,
}

impl DynamicGraphTrace {
    /// Starts a trace whose round-0 graph is `initial`.
    pub fn new(initial: Graph) -> Self {
        let n = initial.num_nodes();
        DynamicGraphTrace {
            n,
            initial,
            deltas: Vec::new(),
        }
    }

    /// Number of potential nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of recorded rounds (including round 0).
    pub fn num_rounds(&self) -> usize {
        self.deltas.len() + 1
    }

    /// Appends the graph of the next round (stored as a delta).
    pub fn push(&mut self, next: &Graph) {
        let prev = self.graph_at(self.num_rounds() - 1);
        self.deltas.push(GraphDelta::between(&prev, next));
    }

    /// Appends a precomputed delta for the next round.
    pub fn push_delta(&mut self, delta: GraphDelta) {
        self.deltas.push(delta);
    }

    /// Reconstructs the graph of round `r` (0-based). `O(r · changes)`.
    pub fn graph_at(&self, r: usize) -> Graph {
        assert!(r < self.num_rounds(), "round {r} beyond trace length");
        let mut g = self.initial.clone();
        // INVARIANT: r < num_rounds() = deltas.len() + 1, checked above.
        for delta in &self.deltas[..r] {
            delta.apply(&mut g);
        }
        g
    }

    /// Iterator over all rounds' graphs, reconstructed incrementally in `O(total changes)`.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            trace: self,
            next_round: 0,
            current: self.initial.clone(),
        }
    }

    /// Total number of edge changes over the whole trace.
    pub fn total_edge_changes(&self) -> usize {
        self.deltas.iter().map(|d| d.num_edge_changes()).sum()
    }

    /// The per-round deltas.
    pub fn deltas(&self) -> &[GraphDelta] {
        &self.deltas
    }

    /// Serializes the trace to a compact line-based text format (version
    /// header, initial graph, one `delta` line per subsequent round). The
    /// format is self-contained and parsed back by [`Self::from_text`];
    /// it replaces the previous serde-based JSON persistence so that traces
    /// can still be written to disk and replayed in offline builds.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "dynnet-trace v1");
        let _ = writeln!(out, "n {}", self.n);
        let active: Vec<String> = self
            .initial
            .active_nodes()
            .map(|v| v.index().to_string())
            .collect();
        let _ = writeln!(out, "active {}", active.join(" "));
        let edges: Vec<String> = self
            .initial
            .edges()
            .map(|e| format!("{}-{}", e.u.index(), e.v.index()))
            .collect();
        let _ = writeln!(out, "edges {}", edges.join(" "));
        for d in &self.deltas {
            let mut parts: Vec<String> = Vec::new();
            for e in &d.inserted {
                parts.push(format!("+e{}-{}", e.u.index(), e.v.index()));
            }
            for e in &d.removed {
                parts.push(format!("-e{}-{}", e.u.index(), e.v.index()));
            }
            for v in &d.woken {
                parts.push(format!("+n{}", v.index()));
            }
            for v in &d.deactivated {
                parts.push(format!("-n{}", v.index()));
            }
            let _ = writeln!(out, "delta {}", parts.join(" "));
        }
        out
    }

    /// Parses a trace from the format produced by [`Self::to_text`].
    ///
    /// All node ids are validated against the universe size `n` and
    /// self-loop edges are rejected, so corrupted or truncated trace files
    /// yield an `Err` instead of panicking downstream.
    pub fn from_text(s: &str) -> Result<Self, String> {
        fn parse_node(tok: &str, n: usize) -> Result<NodeId, String> {
            let v: usize = tok.parse().map_err(|e| format!("bad node {tok}: {e}"))?;
            if v >= n {
                return Err(format!("node {v} out of range (n = {n})"));
            }
            Ok(NodeId::new(v))
        }
        fn parse_edge(tok: &str, n: usize) -> Result<Edge, String> {
            let (a, b) = tok
                .split_once('-')
                .ok_or_else(|| format!("bad edge token: {tok}"))?;
            let u = parse_node(a, n)?;
            let v = parse_node(b, n)?;
            if u == v {
                return Err(format!("self-loop edge {tok} not allowed"));
            }
            Ok(Edge::of(u.index(), v.index()))
        }
        let mut lines = s.lines();
        match lines.next() {
            Some("dynnet-trace v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let n: usize = lines
            .next()
            .and_then(|l| l.strip_prefix("n "))
            .ok_or("missing n line")?
            .trim()
            .parse()
            .map_err(|e| format!("bad n: {e}"))?;
        let active_line = lines
            .next()
            .and_then(|l| l.strip_prefix("active"))
            .ok_or("missing active line")?;
        let edges_line = lines
            .next()
            .and_then(|l| l.strip_prefix("edges"))
            .ok_or("missing edges line")?;
        let mut initial = Graph::new_all_asleep(n);
        for tok in active_line.split_whitespace() {
            initial.activate(parse_node(tok, n)?);
        }
        for tok in edges_line.split_whitespace() {
            let e = parse_edge(tok, n)?;
            initial.insert_edge(e.u, e.v);
        }
        let mut trace = DynamicGraphTrace::new(initial);
        for line in lines {
            let body = line
                .strip_prefix("delta")
                .ok_or_else(|| format!("bad line: {line}"))?;
            let mut delta = GraphDelta::default();
            for tok in body.split_whitespace() {
                if let Some(rest) = tok.strip_prefix("+e") {
                    delta.inserted.push(parse_edge(rest, n)?);
                } else if let Some(rest) = tok.strip_prefix("-e") {
                    delta.removed.push(parse_edge(rest, n)?);
                } else if let Some(rest) = tok.strip_prefix("+n") {
                    delta.woken.push(parse_node(rest, n)?);
                } else if let Some(rest) = tok.strip_prefix("-n") {
                    delta.deactivated.push(parse_node(rest, n)?);
                } else {
                    return Err(format!("bad delta token: {tok}"));
                }
            }
            trace.push_delta(delta);
        }
        Ok(trace)
    }
}

/// Iterator over the graphs of a [`DynamicGraphTrace`].
pub struct TraceIter<'a> {
    trace: &'a DynamicGraphTrace,
    next_round: usize,
    current: Graph,
}

impl Iterator for TraceIter<'_> {
    type Item = Graph;

    fn next(&mut self) -> Option<Graph> {
        if self.next_round >= self.trace.num_rounds() {
            return None;
        }
        if self.next_round > 0 {
            self.trace.deltas[self.next_round - 1].apply(&mut self.current);
        }
        self.next_round += 1;
        Some(self.current.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, edges: &[(usize, usize)]) -> Graph {
        Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::of(a, b)))
    }

    #[test]
    fn delta_between_and_apply_roundtrip() {
        let g0 = g(4, &[(0, 1), (1, 2)]);
        let g1 = g(4, &[(1, 2), (2, 3)]);
        let d = GraphDelta::between(&g0, &g1);
        assert_eq!(d.inserted, vec![Edge::of(2, 3)]);
        assert_eq!(d.removed, vec![Edge::of(0, 1)]);
        let mut x = g0.clone();
        d.apply(&mut x);
        assert_eq!(x.edge_vec(), g1.edge_vec());
        assert_eq!(d.num_edge_changes(), 2);
    }

    #[test]
    fn delta_tracks_wakeups_and_departures() {
        let mut g0 = Graph::new_all_asleep(3);
        g0.activate(NodeId::new(0));
        let mut g1 = g0.clone();
        g1.activate(NodeId::new(1));
        g1.deactivate(NodeId::new(0));
        let d = GraphDelta::between(&g0, &g1);
        assert_eq!(d.woken, vec![NodeId::new(1)]);
        assert_eq!(d.deactivated, vec![NodeId::new(0)]);
        assert!(!d.is_empty());
        assert!(GraphDelta::between(&g0, &g0).is_empty());
    }

    #[test]
    fn constructors_canonicalize_and_dedupe() {
        // The same edge recorded in both orientations, twice, must collapse
        // to a single canonical insertion — adversary-produced deltas can't
        // double-insert.
        let delta = GraphDelta::from_changes(
            vec![Edge::of(3, 1), Edge::of(1, 3), Edge::of(1, 3)],
            vec![Edge::of(2, 0), Edge::of(0, 2)],
            vec![NodeId::new(2), NodeId::new(2)],
            vec![NodeId::new(0), NodeId::new(0)],
        );
        assert_eq!(delta.inserted, vec![Edge::of(1, 3)]);
        assert_eq!(delta.removed, vec![Edge::of(0, 2)]);
        assert_eq!(delta.woken, vec![NodeId::new(2)]);
        assert_eq!(delta.deactivated, vec![NodeId::new(0)]);

        let mut built = GraphDelta::new();
        built
            .insert(NodeId::new(3), NodeId::new(1))
            .insert(NodeId::new(1), NodeId::new(3))
            .remove(NodeId::new(2), NodeId::new(0))
            .wake(NodeId::new(2))
            .deactivate(NodeId::new(0));
        built.normalize();
        assert_eq!(built.inserted, vec![Edge::of(1, 3)]);
        assert_eq!(built.removed, vec![Edge::of(0, 2)]);

        let g0 = g(4, &[(0, 2)]);
        let mut applied = g0.clone();
        delta.apply(&mut applied);
        assert!(applied.has_edge(NodeId::new(1), NodeId::new(3)));
        assert!(!applied.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!applied.is_active(NodeId::new(0)));
    }

    #[test]
    fn materialize_and_unapply_roundtrip() {
        let mut g0 = Graph::new_all_asleep(5);
        g0.insert_edge(NodeId::new(0), NodeId::new(1));
        g0.insert_edge(NodeId::new(1), NodeId::new(2));
        g0.activate(NodeId::new(4));
        let mut g1 = g0.clone();
        g1.remove_edge(NodeId::new(0), NodeId::new(1));
        g1.insert_edge(NodeId::new(2), NodeId::new(3));
        g1.deactivate(NodeId::new(4));
        let delta = GraphDelta::between(&g0, &g1);
        assert_eq!(delta.materialize(&g0), g1);
        let mut back = g1.clone();
        delta.unapply(&mut back);
        assert_eq!(back, g0);
    }

    #[test]
    fn trace_reconstructs_every_round() {
        let rounds = [
            g(4, &[(0, 1)]),
            g(4, &[(0, 1), (1, 2)]),
            g(4, &[(1, 2)]),
            g(4, &[(1, 2), (2, 3), (0, 3)]),
        ];
        let mut trace = DynamicGraphTrace::new(rounds[0].clone());
        for r in &rounds[1..] {
            trace.push(r);
        }
        assert_eq!(trace.num_rounds(), 4);
        for (i, expected) in rounds.iter().enumerate() {
            assert_eq!(
                trace.graph_at(i).edge_vec(),
                expected.edge_vec(),
                "round {i}"
            );
        }
        let replayed: Vec<Graph> = trace.iter().collect();
        assert_eq!(replayed.len(), 4);
        for (i, expected) in rounds.iter().enumerate() {
            assert_eq!(replayed[i].edge_vec(), expected.edge_vec());
        }
        // round 0→1: +{1,2}; round 1→2: -{0,1}; round 2→3: +{2,3}, +{0,3}
        assert_eq!(trace.total_edge_changes(), 1 + 1 + 2);
    }

    #[test]
    fn trace_serializes() {
        let mut trace = DynamicGraphTrace::new(g(3, &[(0, 1)]));
        trace.push(&g(3, &[(1, 2)]));
        let text = trace.to_text();
        let back = DynamicGraphTrace::from_text(&text).unwrap();
        assert_eq!(back.num_rounds(), 2);
        assert_eq!(back.graph_at(0).edge_vec(), vec![Edge::of(0, 1)]);
        assert_eq!(back.graph_at(1).edge_vec(), vec![Edge::of(1, 2)]);
        assert_eq!(back.num_nodes(), 3);
    }

    #[test]
    fn trace_text_roundtrips_activity_changes() {
        let mut g0 = Graph::new_all_asleep(4);
        g0.activate(NodeId::new(0));
        g0.activate(NodeId::new(1));
        g0.insert_edge(NodeId::new(0), NodeId::new(1));
        let mut g1 = g0.clone();
        g1.activate(NodeId::new(2));
        g1.deactivate(NodeId::new(0));
        g1.insert_edge(NodeId::new(1), NodeId::new(2));
        let mut trace = DynamicGraphTrace::new(g0);
        trace.push(&g1);
        let back = DynamicGraphTrace::from_text(&trace.to_text()).unwrap();
        let r1 = back.graph_at(1);
        assert!(r1.is_active(NodeId::new(2)));
        assert!(!r1.is_active(NodeId::new(0)));
        assert_eq!(r1.edge_vec(), g1.edge_vec());
    }

    #[test]
    fn trace_text_rejects_bad_values_without_panicking() {
        // Structurally valid tokens with out-of-range or self-loop values
        // must yield Err, not panic (corrupted trace files).
        assert!(DynamicGraphTrace::from_text("dynnet-trace v1\nn 2\nactive 0 7\nedges ").is_err());
        assert!(
            DynamicGraphTrace::from_text("dynnet-trace v1\nn 3\nactive 0 1\nedges 1-1").is_err()
        );
        assert!(DynamicGraphTrace::from_text(
            "dynnet-trace v1\nn 3\nactive 0 1\nedges 0-1\ndelta +e0-9"
        )
        .is_err());
        assert!(DynamicGraphTrace::from_text(
            "dynnet-trace v1\nn 3\nactive 0\nedges 0-1\ndelta +n9"
        )
        .is_err());
    }

    #[test]
    fn trace_text_rejects_garbage() {
        assert!(DynamicGraphTrace::from_text("").is_err());
        assert!(DynamicGraphTrace::from_text("dynnet-trace v1\nn x").is_err());
        assert!(DynamicGraphTrace::from_text(
            "dynnet-trace v1\nn 2\nactive 0 1\nedges 0-1\ndelta ?"
        )
        .is_err());
    }
}
