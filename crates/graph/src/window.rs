//! Sliding-window views over a dynamic graph: the `T`-intersection graph
//! `G^∩T_r` and the `T`-union graph `G^∪T_r` of Definition 2.1.
//!
//! `G^∩T_r` contains the edges present in *every* one of the last `T` rounds
//! (and the nodes awake throughout them); `G^∪T_r` contains the edges present
//! in *at least one* of the last `T` rounds, over the same node set `V^∩T_r`.
//!
//! [`GraphWindow`] is *delta-native*: after the initial graph it consumes
//! per-round [`GraphDelta`]s (via [`GraphWindow::push_delta`]) and maintains
//! run-length state per edge and per node — the round at which the current
//! presence/absence run started. A round update therefore costs `O(|δ|)`
//! (amortized, including garbage collection of edges that left the union),
//! not `O(|E_r|)`: membership in the intersection and union follows from the
//! run lengths alone, and nothing is recounted when the window slides over
//! an unchanged edge. [`GraphWindow::push`] remains as the whole-graph
//! compatibility path (it diffs against the current graph internally).

use crate::dynamic::GraphDelta;
use crate::graph::Graph;
use crate::node::{Edge, NodeId};
use std::collections::{BTreeMap, HashSet, VecDeque};

/// One presence run: `on` is the current state, `since` the round at which
/// this run started (an absent edge with `since = s` was last present in
/// round `s - 1`).
#[derive(Clone, Copy, Debug)]
struct Span {
    on: bool,
    since: u64,
}

/// Per-edge window state: the presence run plus this edge's positions in
/// its endpoints' incidence lists (`pos_u` in `incidence[e.u]`, `pos_v` in
/// `incidence[e.v]`, with `e` normalized so `u < v`). The stored positions
/// make garbage-collecting an expired edge `O(1)` — swap-remove and patch
/// the one entry that moved — instead of a linear scan of the endpoint's
/// list, which would turn mass expiry at a high-degree node quadratic.
#[derive(Clone, Copy, Debug)]
struct EdgeEntry {
    on: bool,
    since: u64,
    pos_u: usize,
    pos_v: usize,
}

/// The window-membership changes produced by pushing one round into a
/// [`GraphWindow`] — returned by [`GraphWindow::push`] and
/// [`GraphWindow::push_delta`].
///
/// Together the seven lists describe *every* way the window graphs of
/// Definition 2.1 can change between consecutive rounds, so a delta-aware
/// consumer (the incremental T-dynamic verifier in `dynnet-core`) can patch
/// materialized `G^∩T` / `G^∪T` / `V^∩T` state in `O(|update|)` instead of
/// re-materializing them:
///
/// * the tight per-round delta (`inserted`, `removed`, `woken`,
///   `deactivated`) — `inserted` edges join `G^∪T` and `removed` edges leave
///   `G^∩T` immediately; `deactivated` nodes leave `V^∩T` immediately (their
///   dropped edges are listed in `removed`);
/// * the *window-expiry* events that occur even on rounds with an empty
///   delta, purely because the window slid: `edges_left_union` (an absent
///   edge's last present round slid out of the window),
///   `edges_joined_intersection` and `nodes_joined_intersection` (a
///   presence/activity run now spans the whole window).
///
/// [`WindowUpdate::dirty_nodes`] flattens the lists into the round's *dirty
/// node set* — exactly the nodes whose incident window-graph structure
/// changed, hence (beyond output changes) the only nodes whose T-dynamic
/// verdict can change this round.
#[derive(Clone, Debug, Default)]
pub struct WindowUpdate {
    /// `true` for the round-0 push: every edge and active node of the
    /// initial graph is listed as new, and consumers holding no prior state
    /// should initialize from the materialized window graphs instead of
    /// patching.
    pub initial: bool,
    /// Edges inserted into the current graph this round (tight: every listed
    /// edge was really absent before). They are in `G^∪T` from this round on.
    pub inserted: Vec<Edge>,
    /// Edges removed from the current graph this round (tight; includes the
    /// edges dropped by node deactivations). They leave `G^∩T` immediately
    /// but remain in `G^∪T` until their last present round ages out.
    pub removed: Vec<Edge>,
    /// Nodes that became active this round.
    pub woken: Vec<NodeId>,
    /// Nodes deactivated this round — they leave `V^∩T` immediately.
    pub deactivated: Vec<NodeId>,
    /// Absent edges whose last present round slid out of the window this
    /// round: they leave `G^∪T` now, possibly with an empty delta.
    pub edges_left_union: Vec<Edge>,
    /// Edges whose presence run now spans the whole window: they join
    /// `G^∩T` this round (for `T = 1`, insertions mature immediately).
    pub edges_joined_intersection: Vec<Edge>,
    /// Nodes whose activity run now spans the whole window: they join
    /// `V^∩T` this round.
    pub nodes_joined_intersection: Vec<NodeId>,
}

impl WindowUpdate {
    /// Returns `true` if the round changed no window membership at all (the
    /// intersection graph, union graph, and `V^∩T` are all unchanged).
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.removed.is_empty()
            && self.woken.is_empty()
            && self.deactivated.is_empty()
            && self.edges_left_union.is_empty()
            && self.edges_joined_intersection.is_empty()
            && self.nodes_joined_intersection.is_empty()
    }

    /// The round's dirty node set: every node incident to a listed edge
    /// event plus every node with a listed activity/membership event, sorted
    /// and deduplicated. These are the only nodes whose window-graph
    /// neighborhood changed this round.
    pub fn dirty_nodes(&self) -> Vec<NodeId> {
        let mut dirty: Vec<NodeId> = Vec::new();
        for e in self
            .inserted
            .iter()
            .chain(&self.removed)
            .chain(&self.edges_left_union)
            .chain(&self.edges_joined_intersection)
        {
            dirty.push(e.u);
            dirty.push(e.v);
        }
        dirty.extend_from_slice(&self.woken);
        dirty.extend_from_slice(&self.deactivated);
        dirty.extend_from_slice(&self.nodes_joined_intersection);
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }
}

/// Incrementally maintained sliding window over the last `T` rounds of a
/// dynamic graph, exposing the intersection graph `G^∩T_r` and union graph
/// `G^∪T_r` of Definition 2.1.
#[derive(Clone, Debug)]
pub struct GraphWindow {
    n: usize,
    window: usize,
    /// Total rounds pushed so far; the current round index is
    /// `rounds_pushed - 1`.
    rounds_pushed: u64,
    /// The most recent graph, materialized.
    current: Graph,
    /// Realized (tight) deltas between consecutive window rounds, oldest
    /// first — at most `T - 1` of them; past rounds are reconstructed by
    /// un-applying them from `current`.
    deltas: VecDeque<GraphDelta>,
    /// Presence run per edge that is present now or was present within the
    /// window (stale absent entries are garbage-collected lazily).
    ///
    /// A `BTreeMap` so that iterating it ([`GraphWindow::intersection_graph`],
    /// [`GraphWindow::union_graph`]) visits edges in `Ord` order — the
    /// materialized graphs are independent of insertion history by
    /// construction, not by the downstream `Graph` happening to sort.
    edge_state: BTreeMap<Edge, EdgeEntry>,
    /// Per-node incidence lists over `edge_state`: `incidence[v]` holds the
    /// other endpoint of every edge that currently has an `edge_state` entry
    /// (present, or absent but still inside the union window). Maintained by
    /// the same insert/GC events as `edge_state`, it lets the degree queries
    /// ([`GraphWindow::union_degree`], [`GraphWindow::intersection_degree`])
    /// and [`GraphWindow::locally_static`] touch `O(deg)` entries instead of
    /// scanning the whole `O(|G^∪T|)` edge map.
    incidence: Vec<Vec<NodeId>>,
    /// Activity run per node.
    node_state: Vec<Span>,
    /// `(round_removed, edge)` queue driving the lazy GC of absent edges
    /// that have slid out of the union.
    gc_queue: VecDeque<(u64, Edge)>,
    /// `(round_inserted, edge)` queue driving the intersection-maturity
    /// events: an edge inserted in round `q` joins `G^∩T` when the window
    /// start reaches `q` (round `q + T - 1`), if its presence run survived.
    edge_maturity_queue: VecDeque<(u64, Edge)>,
    /// `(round_woken, node)` queue driving the `V^∩T`-maturity events,
    /// symmetric to `edge_maturity_queue`.
    node_maturity_queue: VecDeque<(u64, NodeId)>,
}

impl GraphWindow {
    /// Creates an empty window of size `window` (the paper's parameter `T ≥ 1`)
    /// over a universe of `n` nodes.
    pub fn new(n: usize, window: usize) -> Self {
        assert!(window >= 1, "window size T must be at least 1");
        GraphWindow {
            n,
            window,
            rounds_pushed: 0,
            current: Graph::new_all_asleep(n),
            deltas: VecDeque::new(),
            edge_state: BTreeMap::new(),
            incidence: vec![Vec::new(); n],
            node_state: vec![
                Span {
                    on: false,
                    since: 0
                };
                n
            ],
            gc_queue: VecDeque::new(),
            edge_maturity_queue: VecDeque::new(),
            node_maturity_queue: VecDeque::new(),
        }
    }

    /// The window size `T`.
    #[inline]
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Number of rounds currently inside the window (`min(T, r+1)` after
    /// pushing round `r`, with rounds counted from the first push).
    #[inline]
    pub fn len(&self) -> usize {
        (self.rounds_pushed.min(self.window as u64)) as usize
    }

    /// Returns `true` if no round has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rounds_pushed == 0
    }

    /// The last round number pushed, if any.
    #[inline]
    pub fn current_round(&self) -> Option<u64> {
        self.rounds_pushed.checked_sub(1)
    }

    /// First round inside the window (all runs starting at or before it span
    /// the whole window). Only meaningful when at least one round was pushed.
    #[inline]
    fn start(&self) -> u64 {
        self.rounds_pushed - self.len() as u64
    }

    /// Pushes the communication graph of the next round into the window and
    /// returns the round's [`WindowUpdate`].
    ///
    /// Compatibility path: diffs `g` against the current graph (`O(|E|)`)
    /// and forwards to the delta path. Streaming callers that already hold
    /// the round's delta should use [`GraphWindow::push_delta`] instead.
    pub fn push(&mut self, g: &Graph) -> WindowUpdate {
        assert_eq!(g.num_nodes(), self.n, "graph universe mismatch");
        if self.rounds_pushed == 0 {
            self.current = g.clone();
            let mut update = WindowUpdate {
                initial: true,
                ..WindowUpdate::default()
            };
            for e in g.edges() {
                let (pos_u, pos_v) = self.add_incidence(e);
                self.edge_state.insert(
                    e,
                    EdgeEntry {
                        on: true,
                        since: 0,
                        pos_u,
                        pos_v,
                    },
                );
                update.inserted.push(e);
                // A one-round window spans the whole (one-round) history.
                update.edges_joined_intersection.push(e);
            }
            for i in 0..self.n {
                let on = g.is_active(NodeId::new(i));
                self.node_state[i] = Span { on, since: 0 };
                if on {
                    update.woken.push(NodeId::new(i));
                    update.nodes_joined_intersection.push(NodeId::new(i));
                }
            }
            self.rounds_pushed = 1;
            return update;
        }
        let delta = GraphDelta::between(&self.current, g);
        self.push_delta(&delta)
    }

    /// Pushes the next round as a delta relative to the current graph —
    /// the `O(|δ|)` streaming path — and returns the round's
    /// [`WindowUpdate`] (the tight delta plus the window-expiry events).
    /// The delta may be loose (no-op changes are tolerated); it is tightened
    /// against the current graph while being applied.
    ///
    /// # Panics
    /// Panics if no initial graph has been pushed yet (round 0 must be
    /// supplied as a whole graph via [`GraphWindow::push`]).
    pub fn push_delta(&mut self, delta: &GraphDelta) -> WindowUpdate {
        assert!(
            self.rounds_pushed > 0,
            "push the round-0 graph via GraphWindow::push before pushing deltas"
        );
        let round = self.rounds_pushed;
        let tight = self.realize(delta);

        let mut update = WindowUpdate {
            initial: false,
            inserted: tight.inserted.clone(),
            removed: tight.removed.clone(),
            woken: tight.woken.clone(),
            deactivated: tight.deactivated.clone(),
            ..WindowUpdate::default()
        };

        for e in &tight.inserted {
            // A brand-new entry (not a re-insertion of an edge still inside
            // the union window) joins the incidence lists; re-insertions
            // keep their stored positions and just flip the run.
            match self.edge_state.get_mut(e) {
                Some(entry) => {
                    entry.on = true;
                    entry.since = round;
                }
                None => {
                    let (pos_u, pos_v) = self.add_incidence(*e);
                    self.edge_state.insert(
                        *e,
                        EdgeEntry {
                            on: true,
                            since: round,
                            pos_u,
                            pos_v,
                        },
                    );
                }
            }
            self.edge_maturity_queue.push_back((round, *e));
        }
        for e in &tight.removed {
            // `realize` only reports removals of edges present in the
            // current graph, and every present edge has a window entry; a
            // miss would mean the incidence bookkeeping already diverged,
            // so skipping (rather than panicking) keeps the window usable.
            debug_assert!(
                self.edge_state.contains_key(e),
                "removed edge {e:?} untracked"
            );
            if let Some(entry) = self.edge_state.get_mut(e) {
                entry.on = false;
                entry.since = round;
                self.gc_queue.push_back((round, *e));
            }
        }
        for &v in &tight.woken {
            self.node_state[v.index()] = Span {
                on: true,
                since: round,
            };
            self.node_maturity_queue.push_back((round, v));
        }
        for &v in &tight.deactivated {
            self.node_state[v.index()] = Span {
                on: false,
                since: round,
            };
        }

        self.deltas.push_back(tight);
        while self.deltas.len() + 1 > self.window {
            self.deltas.pop_front();
        }
        self.rounds_pushed += 1;

        // GC: absent edges whose removal round slid out of the window are no
        // longer in the union and can be forgotten.
        let start = self.start();
        while let Some(&(r, e)) = self.gc_queue.front() {
            if r > start {
                break;
            }
            self.gc_queue.pop_front();
            if let std::collections::btree_map::Entry::Occupied(occ) = self.edge_state.entry(e) {
                if !occ.get().on && occ.get().since == r {
                    let entry = occ.remove();
                    self.drop_incidence(e, entry);
                    update.edges_left_union.push(e);
                }
            }
        }
        // Maturity: a presence/activity run started in round `r` spans the
        // whole window once the window start reaches `r` (for `T = 1` that
        // is this very round). A run superseded by a later event has
        // `since != r` and is skipped — its own queue entry handles it.
        while let Some(&(r, e)) = self.edge_maturity_queue.front() {
            if r > start {
                break;
            }
            self.edge_maturity_queue.pop_front();
            if let Some(s) = self.edge_state.get(&e) {
                if s.on && s.since == r {
                    update.edges_joined_intersection.push(e);
                }
            }
        }
        while let Some(&(r, v)) = self.node_maturity_queue.front() {
            if r > start {
                break;
            }
            self.node_maturity_queue.pop_front();
            let s = self.node_state[v.index()];
            if s.on && s.since == r {
                update.nodes_joined_intersection.push(v);
            }
        }
        update
    }

    /// Registers a fresh `edge_state` entry in both endpoints' incidence
    /// lists, returning its positions `(pos_u, pos_v)` in them.
    fn add_incidence(&mut self, e: Edge) -> (usize, usize) {
        let pos_u = self.incidence[e.u.index()].len();
        self.incidence[e.u.index()].push(e.v);
        let pos_v = self.incidence[e.v.index()].len();
        self.incidence[e.v.index()].push(e.u);
        (pos_u, pos_v)
    }

    /// Removes a garbage-collected `edge_state` entry from both endpoints'
    /// incidence lists in `O(1)`: swap-remove at the entry's stored
    /// positions and patch the stored position of the one edge that moved.
    fn drop_incidence(&mut self, e: Edge, entry: EdgeEntry) {
        Self::incidence_swap_remove(&mut self.incidence, &mut self.edge_state, e.u, entry.pos_u);
        Self::incidence_swap_remove(&mut self.incidence, &mut self.edge_state, e.v, entry.pos_v);
    }

    fn incidence_swap_remove(
        incidence: &mut [Vec<NodeId>],
        edge_state: &mut BTreeMap<Edge, EdgeEntry>,
        v: NodeId,
        pos: usize,
    ) {
        let list = &mut incidence[v.index()];
        list.swap_remove(pos);
        if pos < list.len() {
            // The former last entry moved into `pos`: update its edge's
            // stored position on `v`'s side. Incidence entries exist only
            // for tracked edges, so the lookup cannot miss unless the two
            // structures already diverged — assert in debug, tolerate in
            // release.
            let moved_edge = Edge::new(v, list[pos]);
            debug_assert!(edge_state.contains_key(&moved_edge));
            if let Some(moved) = edge_state.get_mut(&moved_edge) {
                if moved_edge.u == v {
                    moved.pos_u = pos;
                } else {
                    moved.pos_v = pos;
                }
            }
        }
    }

    /// Applies `delta` to the current graph, returning the *tight* delta of
    /// changes that actually took effect (including edges dropped by node
    /// deactivation and nodes implicitly woken by edge insertion).
    fn realize(&mut self, delta: &GraphDelta) -> GraphDelta {
        let g = &mut self.current;
        let mut tight = GraphDelta::default();
        for &v in &delta.woken {
            if !g.is_active(v) {
                g.activate(v);
                tight.woken.push(v);
            }
        }
        for e in &delta.inserted {
            if !g.has_edge(e.u, e.v) {
                for w in [e.u, e.v] {
                    if !g.is_active(w) {
                        tight.woken.push(w);
                    }
                }
                g.insert_edge(e.u, e.v);
                tight.inserted.push(*e);
            }
        }
        for e in &delta.removed {
            if g.remove_edge(e.u, e.v) {
                tight.removed.push(*e);
            }
        }
        for &v in &delta.deactivated {
            if g.is_active(v) {
                for u in g.neighbors_vec(v) {
                    g.remove_edge(v, u);
                    tight.removed.push(Edge::new(v, u));
                }
                g.deactivate(v);
                tight.deactivated.push(v);
            }
        }
        // An edge inserted *and* removed by the same delta (insertions apply
        // first) was never present in any round's final graph: cancel the
        // pair so the tight delta records the net round transition.
        if !tight.inserted.is_empty() && !tight.removed.is_empty() {
            let removed: HashSet<Edge> = tight.removed.iter().copied().collect();
            let cancelled: HashSet<Edge> = tight
                .inserted
                .iter()
                .filter(|e| removed.contains(e))
                .copied()
                .collect();
            if !cancelled.is_empty() {
                tight.inserted.retain(|e| !cancelled.contains(e));
                tight.removed.retain(|e| !cancelled.contains(e));
            }
        }
        tight
    }

    /// The most recent graph `G_r`, if any round has been pushed.
    pub fn current(&self) -> Option<&Graph> {
        if self.rounds_pushed > 0 {
            Some(&self.current)
        } else {
            None
        }
    }

    /// Reconstructs the oldest graph still inside the window.
    pub fn oldest(&self) -> Option<Graph> {
        self.ago(self.len().checked_sub(1)?)
    }

    /// Reconstructs the graph `i` rounds ago (`0` = current), if in the
    /// window. Costs `O(|G_r|)` for the clone plus the changes un-applied on
    /// the way back.
    pub fn ago(&self, i: usize) -> Option<Graph> {
        if self.rounds_pushed == 0 || i >= self.len() {
            return None;
        }
        let mut g = self.current.clone();
        for d in self.deltas.iter().rev().take(i) {
            d.unapply(&mut g);
        }
        Some(g)
    }

    /// Node set `V^∩T_r`: nodes that were awake in every round of the window.
    pub fn intersection_nodes(&self) -> Vec<NodeId> {
        if self.rounds_pushed == 0 {
            return Vec::new();
        }
        let start = self.start();
        (0..self.n)
            .filter(|&i| {
                let s = self.node_state[i];
                s.on && s.since <= start
            })
            .map(NodeId::new)
            .collect()
    }

    /// Returns `true` if `v` has been awake for the whole window.
    pub fn node_in_intersection(&self, v: NodeId) -> bool {
        if self.rounds_pushed == 0 {
            return false;
        }
        let s = self.node_state[v.index()];
        s.on && s.since <= self.start()
    }

    /// Returns `true` if the edge was present in every round of the window.
    pub fn edge_in_intersection(&self, e: Edge) -> bool {
        if self.rounds_pushed == 0 {
            return false;
        }
        matches!(self.edge_state.get(&e), Some(s) if s.on && s.since <= self.start())
    }

    /// Returns `true` if the edge was present in at least one window round.
    pub fn edge_in_union(&self, e: Edge) -> bool {
        if self.rounds_pushed == 0 {
            return false;
        }
        match self.edge_state.get(&e) {
            Some(s) => self.span_in_union(s),
            None => false,
        }
    }

    /// Union membership from an edge's presence run: present now, or removed
    /// recently enough that its last present round is inside the window.
    #[inline]
    fn span_in_union(&self, s: &EdgeEntry) -> bool {
        s.on || s.since > self.start()
    }

    /// Materializes the intersection graph `G^∩T_r`.
    ///
    /// Only nodes in `V^∩T_r` are active; only edges present in all window
    /// rounds are included.
    pub fn intersection_graph(&self) -> Graph {
        let mut g = Graph::new_all_asleep(self.n);
        if self.rounds_pushed == 0 {
            return g;
        }
        let start = self.start();
        for v in self.intersection_nodes() {
            g.activate(v);
        }
        for (&e, s) in &self.edge_state {
            if s.on && s.since <= start {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Materializes the union graph `G^∪T_r` (node set `V^∩T_r`, edge union).
    pub fn union_graph(&self) -> Graph {
        let mut g = Graph::new_all_asleep(self.n);
        if self.rounds_pushed == 0 {
            return g;
        }
        for v in self.intersection_nodes() {
            g.activate(v);
        }
        for (&e, s) in &self.edge_state {
            if self.span_in_union(s) {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Degree of `v` in the union graph: the number of *distinct* neighbors
    /// seen in the last `T` rounds — the paper's notion of "degree" for the
    /// (degree+1)-coloring covering constraint in dynamic networks.
    /// `O(deg^∪T(v))` via the incidence list, not a scan of the edge map.
    pub fn union_degree(&self, v: NodeId) -> usize {
        if self.rounds_pushed == 0 {
            return 0;
        }
        self.incidence[v.index()]
            .iter()
            .filter(|&&u| self.span_in_union(&self.edge_state[&Edge::new(v, u)]))
            .count()
    }

    /// Degree of `v` in the intersection graph (`O(deg^∪T(v))`).
    pub fn intersection_degree(&self, v: NodeId) -> usize {
        if self.rounds_pushed == 0 {
            return 0;
        }
        let start = self.start();
        self.incidence[v.index()]
            .iter()
            .filter(|&&u| {
                let s = self.edge_state[&Edge::new(v, u)];
                s.on && s.since <= start
            })
            .count()
    }

    /// Returns `true` if the α-neighborhood of `v` (measured in the *current*
    /// graph) has been static over the whole window: no edge incident to a
    /// node of `N^α(v) ∪ {v}` was inserted or removed within the window
    /// rounds, so every window graph induces the same adjacency on the ball.
    ///
    /// This is the premise of property B.2 (Definition 3.3) and of the
    /// "locally static" clauses of Corollaries 1.2 and 1.3.
    pub fn locally_static(&self, v: NodeId, alpha: usize) -> bool {
        let Some(cur) = self.current() else {
            return false;
        };
        let ball = crate::neighborhood::neighborhood(cur, v, alpha);
        let start = self.start();
        // Walk only the edges incident to the ball (incidence lists), not
        // the whole edge map. An `edge_state` entry whose run started inside
        // the window is either an edge inserted within it (`on`) or one
        // removed within it (`!on` — absent entries whose run predates the
        // window were garbage-collected when it slid); both break local
        // staticness. Entries with `since ≤ start` are edges present in
        // every window round, which is exactly the static case.
        for &w in &ball {
            for &u in &self.incidence[w.index()] {
                if self.edge_state[&Edge::new(w, u)].since > start {
                    return false;
                }
            }
        }
        true
    }

    /// The pre-incidence-list `union_degree`: a full scan of the edge map.
    /// Kept as the reference the equivalence tests compare against.
    #[cfg(test)]
    fn union_degree_scan(&self, v: NodeId) -> usize {
        if self.rounds_pushed == 0 {
            return 0;
        }
        self.edge_state
            .iter()
            .filter(|(e, s)| e.contains(v) && self.span_in_union(s))
            .count()
    }

    /// The pre-incidence-list `intersection_degree` (full scan, tests only).
    #[cfg(test)]
    fn intersection_degree_scan(&self, v: NodeId) -> usize {
        if self.rounds_pushed == 0 {
            return 0;
        }
        let start = self.start();
        self.edge_state
            .iter()
            .filter(|(e, s)| e.contains(v) && s.on && s.since <= start)
            .count()
    }

    /// The pre-incidence-list `locally_static` (full edge-map scan for the
    /// removed-within-window clause, tests only).
    #[cfg(test)]
    fn locally_static_scan(&self, v: NodeId, alpha: usize) -> bool {
        let Some(cur) = self.current() else {
            return false;
        };
        let ball = crate::neighborhood::neighborhood(cur, v, alpha);
        let start = self.start();
        for &w in &ball {
            for u in cur.neighbors(w) {
                if self.edge_state[&Edge::new(w, u)].since > start {
                    return false;
                }
            }
        }
        let ball_set: HashSet<NodeId> = ball.into_iter().collect();
        for (e, s) in &self.edge_state {
            if !s.on && s.since > start && (ball_set.contains(&e.u) || ball_set.contains(&e.v)) {
                return false;
            }
        }
        true
    }

    /// Brute-force recomputation of the intersection graph (used by tests to
    /// validate the incremental maintenance).
    pub fn intersection_graph_bruteforce(&self) -> Graph {
        self.fold_window_graphs(|acc, g| acc.intersection(g))
    }

    /// Brute-force recomputation of the union graph (testing aid).
    pub fn union_graph_bruteforce(&self) -> Graph {
        self.fold_window_graphs(|acc, g| acc.union(g))
    }

    /// Folds `combine` over the window's rounds, oldest first (the empty
    /// window folds to the all-asleep graph). Every `i < len()` is a valid
    /// [`GraphWindow::ago`] index, so the accumulator is seeded from the
    /// oldest round without any unwrap.
    fn fold_window_graphs(&self, combine: impl Fn(Graph, &Graph) -> Graph) -> Graph {
        let mut acc: Option<Graph> = None;
        for i in (0..self.len()).rev() {
            if let Some(g) = self.ago(i) {
                acc = Some(match acc {
                    None => g,
                    Some(a) => combine(a, &g),
                });
            }
        }
        acc.unwrap_or_else(|| Graph::new_all_asleep(self.n))
    }

    /// Depths of the window's internal maintenance queues (the lazy union
    /// GC and the edge/node intersection-maturity queues) — observability
    /// counters surfaced as the `window.*` metrics.
    pub fn queue_depths(&self) -> QueueDepths {
        QueueDepths {
            gc: self.gc_queue.len(),
            edge_maturity: self.edge_maturity_queue.len(),
            node_maturity: self.node_maturity_queue.len(),
        }
    }
}

/// Depths of a [`GraphWindow`]'s internal maintenance queues, reported by
/// [`GraphWindow::queue_depths`]. Steady-state depths are bounded by the
/// churn of the last `T` rounds; monotone growth indicates a maintenance
/// leak.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueDepths {
    /// Entries in the lazy GC queue of absent edges still inside the union.
    pub gc: usize,
    /// Entries in the edge intersection-maturity queue.
    pub edge_maturity: usize,
    /// Entries in the node intersection-maturity queue.
    pub node_maturity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, edges: &[(usize, usize)]) -> Graph {
        Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::of(a, b)))
    }

    #[test]
    fn window_of_one_round_is_current_graph() {
        let mut w = GraphWindow::new(4, 3);
        let g0 = g(4, &[(0, 1), (2, 3)]);
        w.push(&g0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.intersection_graph().edge_vec(), g0.edge_vec());
        assert_eq!(w.union_graph().edge_vec(), g0.edge_vec());
    }

    #[test]
    fn intersection_and_union_over_three_rounds() {
        let mut w = GraphWindow::new(4, 3);
        w.push(&g(4, &[(0, 1), (1, 2)]));
        w.push(&g(4, &[(0, 1), (2, 3)]));
        w.push(&g(4, &[(0, 1), (1, 2), (2, 3)]));
        let inter = w.intersection_graph();
        let uni = w.union_graph();
        assert_eq!(inter.edge_vec(), vec![Edge::of(0, 1)]);
        assert_eq!(
            uni.edge_vec(),
            vec![Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)]
        );
    }

    #[test]
    fn eviction_forgets_old_edges() {
        let mut w = GraphWindow::new(3, 2);
        w.push(&g(3, &[(0, 1)]));
        w.push(&g(3, &[(1, 2)]));
        w.push(&g(3, &[(1, 2)]));
        // Window now holds rounds 1 and 2: {1,2} in both; {0,1} evicted.
        assert!(w.edge_in_intersection(Edge::of(1, 2)));
        assert!(!w.edge_in_union(Edge::of(0, 1)));
        assert_eq!(w.union_graph().edge_vec(), vec![Edge::of(1, 2)]);
    }

    #[test]
    fn push_delta_matches_whole_graph_push() {
        let seq = [
            g(5, &[(0, 1), (2, 3)]),
            g(5, &[(0, 1), (1, 2)]),
            g(5, &[(1, 2)]),
            g(5, &[(1, 2), (3, 4), (0, 4)]),
            g(5, &[(3, 4)]),
        ];
        let mut by_graph = GraphWindow::new(5, 3);
        let mut by_delta = GraphWindow::new(5, 3);
        let mut prev: Option<Graph> = None;
        for gr in &seq {
            by_graph.push(gr);
            match prev {
                None => by_delta.push(gr),
                Some(p) => by_delta.push_delta(&GraphDelta::between(&p, gr)),
            };
            prev = Some(gr.clone());
            assert_eq!(by_graph.intersection_graph(), by_delta.intersection_graph());
            assert_eq!(by_graph.union_graph(), by_delta.union_graph());
            assert_eq!(by_graph.len(), by_delta.len());
        }
    }

    #[test]
    fn loose_deltas_are_tolerated() {
        let mut w = GraphWindow::new(3, 2);
        w.push(&g(3, &[(0, 1)]));
        let mut loose = GraphDelta::new();
        loose.insert(NodeId::new(0), NodeId::new(1)); // already present: no-op
        loose.remove(NodeId::new(0), NodeId::new(2)); // already absent: no-op
        loose.insert(NodeId::new(1), NodeId::new(2));
        // Inserted *and* removed in one delta: net no-op (never present).
        loose.insert(NodeId::new(0), NodeId::new(2));
        loose.remove(NodeId::new(0), NodeId::new(2));
        w.push_delta(&loose);
        assert_eq!(
            w.current().unwrap().edge_vec(),
            vec![Edge::of(0, 1), Edge::of(1, 2)]
        );
        assert!(w.edge_in_intersection(Edge::of(0, 1)));
        assert!(!w.edge_in_intersection(Edge::of(1, 2)));
        assert!(w.edge_in_union(Edge::of(1, 2)));
        assert!(!w.edge_in_union(Edge::of(0, 2)));
        // The previous round reconstructs exactly despite the loose input.
        assert_eq!(w.ago(1).unwrap().edge_vec(), vec![Edge::of(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "round-0")]
    fn push_delta_without_initial_graph_panics() {
        let mut w = GraphWindow::new(3, 2);
        w.push_delta(&GraphDelta::new());
    }

    #[test]
    fn union_degree_counts_distinct_neighbors() {
        let mut w = GraphWindow::new(5, 4);
        w.push(&g(5, &[(0, 1)]));
        w.push(&g(5, &[(0, 2)]));
        w.push(&g(5, &[(0, 3)]));
        assert_eq!(w.union_degree(NodeId::new(0)), 3);
        assert_eq!(w.intersection_degree(NodeId::new(0)), 0);
    }

    #[test]
    fn node_activity_intersection() {
        let mut w = GraphWindow::new(3, 2);
        let mut g0 = Graph::new_all_asleep(3);
        g0.activate(NodeId::new(0));
        let mut g1 = Graph::new_all_asleep(3);
        g1.activate(NodeId::new(0));
        g1.activate(NodeId::new(1));
        w.push(&g0);
        w.push(&g1);
        assert!(w.node_in_intersection(NodeId::new(0)));
        assert!(!w.node_in_intersection(NodeId::new(1)));
        assert_eq!(w.intersection_nodes(), vec![NodeId::new(0)]);
    }

    #[test]
    fn incremental_matches_bruteforce() {
        let mut w = GraphWindow::new(6, 3);
        let seq = [
            g(6, &[(0, 1), (2, 3), (4, 5)]),
            g(6, &[(0, 1), (1, 2), (4, 5)]),
            g(6, &[(0, 1), (3, 4)]),
            g(6, &[(1, 2), (3, 4), (0, 1)]),
            g(6, &[(1, 2)]),
        ];
        for gr in &seq {
            w.push(gr);
            assert_eq!(
                w.intersection_graph().edge_vec(),
                w.intersection_graph_bruteforce().edge_vec()
            );
            assert_eq!(
                w.union_graph().edge_vec(),
                w.union_graph_bruteforce().edge_vec()
            );
        }
    }

    #[test]
    fn locally_static_detection() {
        let mut w = GraphWindow::new(5, 3);
        // Node 0's 1-neighborhood {0,1} stays identical; node 3-4 edge churns.
        w.push(&g(5, &[(0, 1), (3, 4)]));
        w.push(&g(5, &[(0, 1)]));
        w.push(&g(5, &[(0, 1), (3, 4)]));
        assert!(w.locally_static(NodeId::new(0), 1));
        assert!(!w.locally_static(NodeId::new(3), 1));
        // 2-neighborhood of 0 is {0,1} (nothing else attached), still static.
        assert!(w.locally_static(NodeId::new(0), 2));
    }

    #[test]
    fn ago_indexing() {
        let mut w = GraphWindow::new(3, 3);
        let g0 = g(3, &[(0, 1)]);
        let g1 = g(3, &[(1, 2)]);
        w.push(&g0);
        w.push(&g1);
        assert_eq!(w.ago(0).unwrap().edge_vec(), g1.edge_vec());
        assert_eq!(w.ago(1).unwrap().edge_vec(), g0.edge_vec());
        assert!(w.ago(2).is_none());
        assert_eq!(w.current_round(), Some(1));
        assert_eq!(w.oldest().unwrap().edge_vec(), g0.edge_vec());
    }

    #[test]
    fn ago_reconstructs_activity() {
        let mut w = GraphWindow::new(4, 3);
        let mut g0 = Graph::new_all_asleep(4);
        g0.insert_edge(NodeId::new(0), NodeId::new(1));
        w.push(&g0);
        let mut g1 = g0.clone();
        g1.activate(NodeId::new(2));
        g1.deactivate(NodeId::new(0));
        w.push(&g1);
        let back = w.ago(1).unwrap();
        assert_eq!(back, g0);
        assert!(w.ago(0).unwrap() == g1);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = GraphWindow::new(3, 0);
    }

    /// Applies a [`WindowUpdate`] to shadow copies of the window graphs —
    /// exactly what the incremental verifier does with its ledger.
    fn patch_shadow(
        u: &WindowUpdate,
        inter: &mut Graph,
        union: &mut Graph,
        vcap: &mut std::collections::BTreeSet<NodeId>,
    ) {
        for e in &u.inserted {
            union.insert_edge(e.u, e.v);
        }
        for e in &u.removed {
            inter.remove_edge(e.u, e.v);
        }
        for e in &u.edges_left_union {
            union.remove_edge(e.u, e.v);
        }
        for e in &u.edges_joined_intersection {
            inter.insert_edge(e.u, e.v);
        }
        for v in &u.deactivated {
            vcap.remove(v);
        }
        for v in &u.nodes_joined_intersection {
            vcap.insert(*v);
        }
    }

    #[test]
    fn window_updates_patch_shadow_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let n = 9;
        for t in 1..=5usize {
            let mut w = GraphWindow::new(n, t);
            let mut inter = Graph::new_all_asleep(n);
            let mut union = Graph::new_all_asleep(n);
            let mut vcap = std::collections::BTreeSet::new();
            let mut cur = Graph::new_all_asleep(n);
            for _ in 0..6 {
                if rng.gen_bool(0.8) {
                    cur.activate(NodeId::new(rng.gen_range(0..n)));
                }
            }
            for round in 0..40 {
                // Mutate the graph a little (edges only between active nodes
                // keeps the diff tight); occasionally change node activity.
                for _ in 0..rng.gen_range(0..4) {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a != b && cur.is_active(NodeId::new(a)) && cur.is_active(NodeId::new(b)) {
                        cur.toggle_edge(NodeId::new(a), NodeId::new(b));
                    }
                }
                if rng.gen_bool(0.3) {
                    let v = NodeId::new(rng.gen_range(0..n));
                    if cur.is_active(v) {
                        for u in cur.neighbors_vec(v) {
                            cur.remove_edge(v, u);
                        }
                        cur.deactivate(v);
                    } else {
                        cur.activate(v);
                    }
                }
                let update = w.push(&cur);
                if update.initial {
                    inter = w.intersection_graph();
                    union = w.union_graph();
                    vcap = w.intersection_nodes().into_iter().collect();
                } else {
                    patch_shadow(&update, &mut inter, &mut union, &mut vcap);
                }
                assert_eq!(
                    inter.edge_vec(),
                    w.intersection_graph().edge_vec(),
                    "T={t} round={round} intersection diverged"
                );
                assert_eq!(
                    union.edge_vec(),
                    w.union_graph().edge_vec(),
                    "T={t} round={round} union diverged"
                );
                let want: std::collections::BTreeSet<NodeId> =
                    w.intersection_nodes().into_iter().collect();
                assert_eq!(vcap, want, "T={t} round={round} V^∩T diverged");
            }
        }
    }

    #[test]
    fn incidence_degree_queries_match_full_scans() {
        // Randomized runs across window sizes: after every push, the
        // incidence-list degree queries and `locally_static` must agree
        // with the original full-edge-map scans for every node.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = 10;
        for t in [1usize, 2, 3, 5] {
            let mut w = GraphWindow::new(n, t);
            let mut cur = Graph::new(n);
            for round in 0..50 {
                for _ in 0..rng.gen_range(0..5) {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    if a != b {
                        cur.toggle_edge(NodeId::new(a), NodeId::new(b));
                    }
                }
                w.push(&cur);
                for i in 0..n {
                    let v = NodeId::new(i);
                    assert_eq!(
                        w.union_degree(v),
                        w.union_degree_scan(v),
                        "T={t} round={round} union_degree({i})"
                    );
                    assert_eq!(
                        w.intersection_degree(v),
                        w.intersection_degree_scan(v),
                        "T={t} round={round} intersection_degree({i})"
                    );
                    for alpha in [0usize, 1, 2] {
                        assert_eq!(
                            w.locally_static(v, alpha),
                            w.locally_static_scan(v, alpha),
                            "T={t} round={round} locally_static({i}, {alpha})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn expiry_events_fire_on_empty_deltas() {
        // T = 3: the edge {0,1} is removed in round 1; it leaves the union
        // in round 3 (its last present round, 0, slides out) even though the
        // round-3 delta is empty. The edge {1,2}, inserted in round 1,
        // matures into the intersection in round 3 the same way.
        let mut w = GraphWindow::new(3, 3);
        w.push(&g(3, &[(0, 1)]));
        let mut d1 = GraphDelta::new();
        d1.remove(NodeId::new(0), NodeId::new(1));
        d1.insert(NodeId::new(1), NodeId::new(2));
        let u1 = w.push_delta(&d1);
        assert_eq!(u1.removed, vec![Edge::of(0, 1)]);
        assert_eq!(u1.inserted, vec![Edge::of(1, 2)]);
        assert!(u1.edges_left_union.is_empty());
        assert!(u1.edges_joined_intersection.is_empty());

        let u2 = w.push_delta(&GraphDelta::new());
        assert!(u2.is_empty(), "window not sliding yet: {u2:?}");

        let u3 = w.push_delta(&GraphDelta::new());
        assert_eq!(u3.edges_left_union, vec![Edge::of(0, 1)]);
        assert_eq!(u3.edges_joined_intersection, vec![Edge::of(1, 2)]);
        assert_eq!(
            u3.dirty_nodes(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        assert!(!w.edge_in_union(Edge::of(0, 1)));
        assert!(w.edge_in_intersection(Edge::of(1, 2)));
    }

    #[test]
    fn node_maturity_events_track_vcap() {
        // Node 2 wakes in round 1; with T = 2 it joins V^∩T in round 2.
        let mut w = GraphWindow::new(3, 2);
        let mut g0 = Graph::new_all_asleep(3);
        g0.activate(NodeId::new(0));
        let u0 = w.push(&g0);
        assert!(u0.initial);
        assert_eq!(u0.nodes_joined_intersection, vec![NodeId::new(0)]);
        let mut d1 = GraphDelta::new();
        d1.wake(NodeId::new(2));
        let u1 = w.push_delta(&d1);
        assert_eq!(u1.woken, vec![NodeId::new(2)]);
        assert!(u1.nodes_joined_intersection.is_empty());
        assert!(!w.node_in_intersection(NodeId::new(2)));
        let u2 = w.push_delta(&GraphDelta::new());
        assert_eq!(u2.nodes_joined_intersection, vec![NodeId::new(2)]);
        assert!(w.node_in_intersection(NodeId::new(2)));
    }

    #[test]
    fn single_round_window_updates_are_immediate() {
        // T = 1: insertions mature and removals age out in the same round.
        let mut w = GraphWindow::new(3, 1);
        w.push(&g(3, &[(0, 1)]));
        let mut d = GraphDelta::new();
        d.remove(NodeId::new(0), NodeId::new(1));
        d.insert(NodeId::new(1), NodeId::new(2));
        let u = w.push_delta(&d);
        assert_eq!(u.edges_left_union, vec![Edge::of(0, 1)]);
        assert_eq!(u.edges_joined_intersection, vec![Edge::of(1, 2)]);
    }

    #[test]
    fn materialized_graphs_are_history_independent() {
        // Two windows that end up holding the same last-T rounds must
        // materialize identical graphs, regardless of the order edges
        // entered `edge_state` (initial bulk load vs. one-at-a-time in
        // reverse) and of pre-window churn that has since slid out. This
        // pins the `BTreeMap` choice for `edge_state`: with a hash map the
        // iteration in `union_graph`/`intersection_graph` would depend on
        // insertion history even when the window contents agree.
        let final_rounds = [
            g(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]),
            g(6, &[(0, 1), (1, 2), (3, 4)]),
            g(6, &[(0, 1), (1, 2), (3, 4), (2, 3)]),
        ];

        // History A: the final rounds only, edges bulk-loaded in order.
        let mut a = GraphWindow::new(6, 3);
        for r in &final_rounds {
            a.push(r);
        }

        // History B: starts from churn (edges inserted one per round, in
        // reverse order, then removed) that fully slides out of the window
        // before the final rounds arrive.
        let mut b = GraphWindow::new(6, 3);
        b.push(&g(6, &[]));
        for &(u, v) in &[(4, 5), (2, 3), (0, 1)] {
            let mut d = GraphDelta::new();
            d.insert(NodeId::new(u), NodeId::new(v));
            b.push_delta(&d);
        }
        for r in &final_rounds {
            b.push(r);
        }

        assert_eq!(a.len(), b.len());
        assert_eq!(a.union_graph().edge_vec(), b.union_graph().edge_vec());
        assert_eq!(
            a.intersection_graph().edge_vec(),
            b.intersection_graph().edge_vec()
        );
        // And the materialized order is the canonical sorted one.
        let mut expected = vec![
            Edge::of(0, 1),
            Edge::of(1, 2),
            Edge::of(2, 3),
            Edge::of(3, 4),
            Edge::of(4, 5),
        ];
        expected.sort();
        assert_eq!(a.union_graph().edge_vec(), expected);
    }
}
