//! Sliding-window views over a dynamic graph: the `T`-intersection graph
//! `G^∩T_r` and the `T`-union graph `G^∪T_r` of Definition 2.1.
//!
//! `G^∩T_r` contains the edges present in *every* one of the last `T` rounds
//! (and the nodes awake throughout them); `G^∪T_r` contains the edges present
//! in *at least one* of the last `T` rounds, over the same node set `V^∩T_r`.
//!
//! [`GraphWindow`] maintains both views incrementally: per edge it stores the
//! number of rounds (within the window) in which the edge was present, so a
//! round update costs `O(|E_{r-T}| + |E_r|)` instead of recomputing `T`-fold
//! intersections and unions from scratch.

use crate::graph::Graph;
use crate::node::{Edge, NodeId};
use std::collections::{HashMap, VecDeque};

/// Incrementally maintained sliding window over the last `T` rounds of a
/// dynamic graph, exposing the intersection graph `G^∩T_r` and union graph
/// `G^∪T_r` of Definition 2.1.
#[derive(Clone, Debug)]
pub struct GraphWindow {
    n: usize,
    window: usize,
    /// Graphs of the last ≤ `window` rounds, oldest first.
    history: VecDeque<Graph>,
    /// For every edge present in at least one window round: in how many of
    /// those rounds it was present.
    edge_counts: HashMap<Edge, usize>,
    /// For every node: in how many of the window rounds it was awake.
    active_counts: Vec<usize>,
    round: Option<u64>,
}

impl GraphWindow {
    /// Creates an empty window of size `window` (the paper's parameter `T ≥ 1`)
    /// over a universe of `n` nodes.
    pub fn new(n: usize, window: usize) -> Self {
        assert!(window >= 1, "window size T must be at least 1");
        GraphWindow {
            n,
            window,
            history: VecDeque::with_capacity(window),
            edge_counts: HashMap::new(),
            active_counts: vec![0; n],
            round: None,
        }
    }

    /// The window size `T`.
    #[inline]
    pub fn window_size(&self) -> usize {
        self.window
    }

    /// Number of rounds currently inside the window (`min(T, r+1)` after
    /// pushing round `r`, with rounds counted from the first push).
    #[inline]
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` if no round has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The last round number pushed, if any.
    #[inline]
    pub fn current_round(&self) -> Option<u64> {
        self.round
    }

    /// Pushes the communication graph of the next round into the window,
    /// evicting the oldest graph if the window is full.
    pub fn push(&mut self, g: &Graph) {
        assert_eq!(g.num_nodes(), self.n, "graph universe mismatch");
        if self.history.len() == self.window {
            let old = self.history.pop_front().expect("window non-empty");
            for e in old.edges() {
                let c = self
                    .edge_counts
                    .get_mut(&e)
                    .expect("evicted edge must be counted");
                *c -= 1;
                if *c == 0 {
                    self.edge_counts.remove(&e);
                }
            }
            for v in old.active_nodes() {
                self.active_counts[v.index()] -= 1;
            }
        }
        for e in g.edges() {
            *self.edge_counts.entry(e).or_insert(0) += 1;
        }
        for v in g.active_nodes() {
            self.active_counts[v.index()] += 1;
        }
        self.history.push_back(g.clone());
        self.round = Some(self.round.map_or(0, |r| r + 1));
    }

    /// The most recent graph `G_r`, if any round has been pushed.
    pub fn current(&self) -> Option<&Graph> {
        self.history.back()
    }

    /// The oldest graph still inside the window.
    pub fn oldest(&self) -> Option<&Graph> {
        self.history.front()
    }

    /// Returns the graph `i` rounds ago (`0` = current), if in the window.
    pub fn ago(&self, i: usize) -> Option<&Graph> {
        if i < self.history.len() {
            self.history.get(self.history.len() - 1 - i)
        } else {
            None
        }
    }

    /// Node set `V^∩T_r`: nodes that were awake in every round of the window.
    pub fn intersection_nodes(&self) -> Vec<NodeId> {
        let k = self.history.len();
        (0..self.n)
            .filter(|&i| k > 0 && self.active_counts[i] == k)
            .map(NodeId::new)
            .collect()
    }

    /// Returns `true` if `v` has been awake for the whole window.
    pub fn node_in_intersection(&self, v: NodeId) -> bool {
        let k = self.history.len();
        k > 0 && self.active_counts[v.index()] == k
    }

    /// Returns `true` if the edge was present in every round of the window.
    pub fn edge_in_intersection(&self, e: Edge) -> bool {
        let k = self.history.len();
        k > 0 && self.edge_counts.get(&e).copied().unwrap_or(0) == k
    }

    /// Returns `true` if the edge was present in at least one window round.
    pub fn edge_in_union(&self, e: Edge) -> bool {
        self.edge_counts.contains_key(&e)
    }

    /// Materializes the intersection graph `G^∩T_r`.
    ///
    /// Only nodes in `V^∩T_r` are active; only edges present in all window
    /// rounds are included.
    pub fn intersection_graph(&self) -> Graph {
        let k = self.history.len();
        let mut g = Graph::new_all_asleep(self.n);
        if k == 0 {
            return g;
        }
        for i in 0..self.n {
            if self.active_counts[i] == k {
                g.activate(NodeId::new(i));
            }
        }
        for (&e, &c) in &self.edge_counts {
            if c == k {
                g.insert_edge(e.u, e.v);
            }
        }
        g
    }

    /// Materializes the union graph `G^∪T_r` (node set `V^∩T_r`, edge union).
    pub fn union_graph(&self) -> Graph {
        let k = self.history.len();
        let mut g = Graph::new_all_asleep(self.n);
        if k == 0 {
            return g;
        }
        for i in 0..self.n {
            if self.active_counts[i] == k {
                g.activate(NodeId::new(i));
            }
        }
        for &e in self.edge_counts.keys() {
            g.insert_edge(e.u, e.v);
        }
        g
    }

    /// Degree of `v` in the union graph: the number of *distinct* neighbors
    /// seen in the last `T` rounds — the paper's notion of "degree" for the
    /// (degree+1)-coloring covering constraint in dynamic networks.
    pub fn union_degree(&self, v: NodeId) -> usize {
        self.edge_counts.keys().filter(|e| e.contains(v)).count()
    }

    /// Degree of `v` in the intersection graph.
    pub fn intersection_degree(&self, v: NodeId) -> usize {
        let k = self.history.len();
        if k == 0 {
            return 0;
        }
        self.edge_counts
            .iter()
            .filter(|(e, &c)| c == k && e.contains(v))
            .count()
    }

    /// Returns `true` if the α-neighborhood of `v` (measured in the *current*
    /// graph) has been static over the whole window: every graph in the window
    /// induces the same edge set on `N^α(v) ∪ {v}` and the same adjacency for
    /// each of those nodes.
    ///
    /// This is the premise of property B.2 (Definition 3.3) and of the
    /// "locally static" clauses of Corollaries 1.2 and 1.3.
    pub fn locally_static(&self, v: NodeId, alpha: usize) -> bool {
        let Some(cur) = self.current() else {
            return false;
        };
        let ball = crate::neighborhood::neighborhood(cur, v, alpha);
        let first = self.history.front().expect("non-empty history");
        for g in self.history.iter().skip(1) {
            if !first.same_edges_on(g, &ball) {
                return false;
            }
        }
        true
    }

    /// Brute-force recomputation of the intersection graph (used by tests to
    /// validate the incremental maintenance).
    pub fn intersection_graph_bruteforce(&self) -> Graph {
        let mut it = self.history.iter();
        let Some(first) = it.next() else {
            return Graph::new_all_asleep(self.n);
        };
        let mut acc = first.clone();
        // Restrict activity to V^∩.
        for g in self.history.iter() {
            for i in 0..self.n {
                if !g.is_active(NodeId::new(i)) && acc.is_active(NodeId::new(i)) {
                    // Do not remove edges: activity and edges are tracked
                    // independently in Definition 2.1.
                }
            }
        }
        for g in it {
            acc = acc.intersection(g);
        }
        // `Graph::intersection` already intersects activity; for a single
        // graph ensure activity equals that graph's activity.
        if self.history.len() == 1 {
            return first.clone();
        }
        acc
    }

    /// Brute-force recomputation of the union graph (testing aid).
    pub fn union_graph_bruteforce(&self) -> Graph {
        let mut it = self.history.iter();
        let Some(first) = it.next() else {
            return Graph::new_all_asleep(self.n);
        };
        let mut acc = first.clone();
        for g in it {
            acc = acc.union(g);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, edges: &[(usize, usize)]) -> Graph {
        Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::of(a, b)))
    }

    #[test]
    fn window_of_one_round_is_current_graph() {
        let mut w = GraphWindow::new(4, 3);
        let g0 = g(4, &[(0, 1), (2, 3)]);
        w.push(&g0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.intersection_graph().edge_vec(), g0.edge_vec());
        assert_eq!(w.union_graph().edge_vec(), g0.edge_vec());
    }

    #[test]
    fn intersection_and_union_over_three_rounds() {
        let mut w = GraphWindow::new(4, 3);
        w.push(&g(4, &[(0, 1), (1, 2)]));
        w.push(&g(4, &[(0, 1), (2, 3)]));
        w.push(&g(4, &[(0, 1), (1, 2), (2, 3)]));
        let inter = w.intersection_graph();
        let uni = w.union_graph();
        assert_eq!(inter.edge_vec(), vec![Edge::of(0, 1)]);
        assert_eq!(
            uni.edge_vec(),
            vec![Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)]
        );
    }

    #[test]
    fn eviction_forgets_old_edges() {
        let mut w = GraphWindow::new(3, 2);
        w.push(&g(3, &[(0, 1)]));
        w.push(&g(3, &[(1, 2)]));
        w.push(&g(3, &[(1, 2)]));
        // Window now holds rounds 1 and 2: {1,2} in both; {0,1} evicted.
        assert!(w.edge_in_intersection(Edge::of(1, 2)));
        assert!(!w.edge_in_union(Edge::of(0, 1)));
        assert_eq!(w.union_graph().edge_vec(), vec![Edge::of(1, 2)]);
    }

    #[test]
    fn union_degree_counts_distinct_neighbors() {
        let mut w = GraphWindow::new(5, 4);
        w.push(&g(5, &[(0, 1)]));
        w.push(&g(5, &[(0, 2)]));
        w.push(&g(5, &[(0, 3)]));
        assert_eq!(w.union_degree(NodeId::new(0)), 3);
        assert_eq!(w.intersection_degree(NodeId::new(0)), 0);
    }

    #[test]
    fn node_activity_intersection() {
        let mut w = GraphWindow::new(3, 2);
        let mut g0 = Graph::new_all_asleep(3);
        g0.activate(NodeId::new(0));
        let mut g1 = Graph::new_all_asleep(3);
        g1.activate(NodeId::new(0));
        g1.activate(NodeId::new(1));
        w.push(&g0);
        w.push(&g1);
        assert!(w.node_in_intersection(NodeId::new(0)));
        assert!(!w.node_in_intersection(NodeId::new(1)));
        assert_eq!(w.intersection_nodes(), vec![NodeId::new(0)]);
    }

    #[test]
    fn incremental_matches_bruteforce() {
        let mut w = GraphWindow::new(6, 3);
        let seq = [
            g(6, &[(0, 1), (2, 3), (4, 5)]),
            g(6, &[(0, 1), (1, 2), (4, 5)]),
            g(6, &[(0, 1), (3, 4)]),
            g(6, &[(1, 2), (3, 4), (0, 1)]),
            g(6, &[(1, 2)]),
        ];
        for gr in &seq {
            w.push(gr);
            assert_eq!(
                w.intersection_graph().edge_vec(),
                w.intersection_graph_bruteforce().edge_vec()
            );
            assert_eq!(
                w.union_graph().edge_vec(),
                w.union_graph_bruteforce().edge_vec()
            );
        }
    }

    #[test]
    fn locally_static_detection() {
        let mut w = GraphWindow::new(5, 3);
        // Node 0's 1-neighborhood {0,1} stays identical; node 3-4 edge churns.
        w.push(&g(5, &[(0, 1), (3, 4)]));
        w.push(&g(5, &[(0, 1)]));
        w.push(&g(5, &[(0, 1), (3, 4)]));
        assert!(w.locally_static(NodeId::new(0), 1));
        assert!(!w.locally_static(NodeId::new(3), 1));
        // 2-neighborhood of 0 is {0,1} (nothing else attached), still static.
        assert!(w.locally_static(NodeId::new(0), 2));
    }

    #[test]
    fn ago_indexing() {
        let mut w = GraphWindow::new(3, 3);
        let g0 = g(3, &[(0, 1)]);
        let g1 = g(3, &[(1, 2)]);
        w.push(&g0);
        w.push(&g1);
        assert_eq!(w.ago(0).unwrap().edge_vec(), g1.edge_vec());
        assert_eq!(w.ago(1).unwrap().edge_vec(), g0.edge_vec());
        assert!(w.ago(2).is_none());
        assert_eq!(w.current_round(), Some(1));
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = GraphWindow::new(3, 0);
    }
}
