//! The sharded work-stealing executor behind every sweep.
//!
//! A [`SweepEngine`] executes the cells of a [`SweepSpec`] on a fixed pool
//! of worker threads. The cells are split into one contiguous shard per
//! worker; a worker drains its own shard front-to-back and, when it runs
//! dry, steals the back half of the fullest remaining shard — so a shard of
//! slow cells (large `n`, long horizons) cannot serialize the sweep behind
//! one thread. Because every cell is a self-contained deterministic
//! computation (it builds its own adversary, RNG streams, and observers from
//! its parameters) and results are stored under the cell's grid index, the
//! sweep's output is byte-identical no matter how many threads execute it or
//! how the steals interleave.
//!
//! A panic in any cell cancels the sweep: the remaining queues are drained,
//! in-flight cells finish, and the engine reports *which grid cell* failed
//! ([`SweepError`] carries the cell index and label) instead of tearing down
//! the process.

use crate::spec::{Cell, SweepSpec};
use dynnet_obs::ProgressSink;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A sweep failed because a cell panicked (or a worker died).
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Name of the sweep spec that failed.
    pub sweep: String,
    /// Grid index of the failing cell.
    pub cell_index: usize,
    /// Label of the failing cell.
    pub cell_label: String,
    /// The panic message (best-effort extraction from the panic payload).
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep '{}' failed at cell {} [{}]: {}",
            self.sweep, self.cell_index, self.cell_label, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// Per-shard execution counters, reported after every sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Cells this worker executed (its own plus stolen ones).
    pub executed: usize,
    /// Cells this worker stole from other shards.
    pub stolen: usize,
}

/// Timing and load-balance report of one executed sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Total number of cells executed.
    pub cells: usize,
    /// Number of worker threads used.
    pub threads: usize,
    /// Wall-clock duration of the sweep.
    pub elapsed: Duration,
    /// Per-worker counters, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl SweepReport {
    /// Scenario throughput in cells per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.cells as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// The result of a successful sweep: per-cell results in grid order plus the
/// execution report.
#[derive(Debug)]
pub struct SweepRun<R> {
    pub(crate) results: Vec<R>,
    report: SweepReport,
}

impl<R> SweepRun<R> {
    pub(crate) fn from_parts(results: Vec<R>, report: SweepReport) -> Self {
        SweepRun { results, report }
    }

    /// The per-cell results, indexed by grid (cell) index — independent of
    /// the order in which the cells actually completed.
    pub fn results(&self) -> &[R] {
        &self.results
    }

    /// Consumes the run into the grid-ordered result vector.
    pub fn into_results(self) -> Vec<R> {
        self.results
    }

    /// Timing and per-shard load-balance counters.
    pub fn report(&self) -> &SweepReport {
        &self.report
    }
}

/// Locks a sweep-internal mutex, recovering from poisoning.
///
/// A poisoned lock here means a sibling worker panicked while holding it.
/// Both guarded structures — the shard queues of cell indices and the
/// first-failure slot — are plain data whose invariants hold at every
/// release point, and cell panics are already routed through the cancel
/// path, so the correct behavior is to keep going and report the *original*
/// failure as a typed [`SweepError`] instead of aborting on the poison.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Assembles grid-ordered results from a slot vector. Every cell must have
/// produced a result; a hole means a worker exited without executing its
/// cell — reported as a typed sweep failure naming the cell, never as a
/// process-aborting panic.
pub(crate) fn collect_slots<P, R>(
    spec: &SweepSpec<P>,
    slots: Vec<Option<R>>,
) -> Result<Vec<R>, SweepError> {
    let mut results: Vec<R> = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(r) => results.push(r),
            None => {
                return Err(SweepError {
                    sweep: spec.name().to_string(),
                    cell_index: i,
                    cell_label: spec.cells()[i].label.clone(),
                    message: "cell produced no result (worker exited without executing it)"
                        .to_string(),
                })
            }
        }
    }
    Ok(results)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes [`SweepSpec`]s on a sharded work-stealing thread pool.
///
/// The engine is a cheap value (two integers); construct one per harness
/// invocation and share it by reference. `threads == 1` degenerates to an
/// in-place sequential loop (no threads are spawned), which is the reference
/// execution every multi-threaded run must reproduce byte-for-byte.
///
/// The engine is *budget-aware*: a sharded run claims its worker count from
/// the process-wide thread budget ([`rayon::claim_threads`]), so cells that
/// enable per-round parallelism (`SimConfig::parallel`) automatically shrink
/// their fan-out to the budget's remaining share instead of multiplying
/// threads per cell.
#[derive(Clone)]
pub struct SweepEngine {
    threads: usize,
    progress: bool,
    /// Structured progress consumers ([`dynnet_obs::ProgressSink`]), fed at
    /// the same cadence as the stderr line (and per report-step on the
    /// serial path, which stays silent on stderr).
    sinks: Vec<Arc<dyn ProgressSink>>,
}

impl std::fmt::Debug for SweepEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepEngine")
            .field("threads", &self.threads)
            .field("progress", &self.progress)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Default for SweepEngine {
    /// One worker per thread of the shared budget ([`rayon::max_threads`]:
    /// `DYNNET_RAYON_THREADS` if set, otherwise the core count), progress
    /// reporting off.
    fn default() -> Self {
        SweepEngine::new(rayon::max_threads())
    }
}

impl SweepEngine {
    /// Creates an engine with the given number of worker threads (min 1).
    pub fn new(threads: usize) -> Self {
        SweepEngine {
            threads: threads.max(1),
            progress: false,
            sinks: Vec::new(),
        }
    }

    /// Enables or disables progress/throughput reporting on stderr.
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Registers a structured progress sink. Sinks receive roughly ten
    /// `progress` events per sweep plus one `finished` event carrying the
    /// throughput/load-balance summary — on every execution path, including
    /// the serial one (which never writes to stderr).
    pub fn add_sink(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A single-threaded twin of this engine (same progress setting and
    /// sinks). Used by timing-sensitive sweeps (e.g. throughput experiments)
    /// that must not share the machine with sibling cells.
    pub fn serial(&self) -> SweepEngine {
        SweepEngine {
            threads: 1,
            progress: self.progress,
            sinks: self.sinks.clone(),
        }
    }

    /// Mirrors one progress event into the `sweep.*` registry gauges and
    /// every registered sink. Called ~10 times per sweep, never per cell.
    fn emit_progress(&self, name: &str, done: usize, total: usize, threads: usize) {
        let reg = dynnet_obs::registry();
        reg.counter("sweep.cells_done").set(done as u64);
        reg.counter("sweep.cells_total").set(total as u64);
        reg.counter("sweep.threads").set(threads as u64);
        for sink in &self.sinks {
            sink.progress(name, done as u64, total as u64);
        }
    }

    /// Executes every cell of `spec` and returns the results in grid order.
    ///
    /// `run_cell` is invoked once per cell, possibly concurrently from many
    /// worker threads; it must derive everything it needs (graphs, RNGs,
    /// observers) from the cell's parameters. If any cell panics the sweep
    /// is cancelled and the failing cell is reported in the [`SweepError`].
    pub fn run<P, R, F>(&self, spec: &SweepSpec<P>, run_cell: F) -> Result<SweepRun<R>, SweepError>
    where
        P: Sync,
        R: Send,
        F: Fn(&Cell<P>) -> R + Sync,
    {
        let pending: Vec<usize> = (0..spec.len()).collect();
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..spec.len()).map(|_| None).collect());
        let report = self.drive(spec, &pending, 0, &run_cell, &|cell: &Cell<P>, r: R| {
            lock_recover(&slots)[cell.index] = Some(r);
            Ok(())
        })?;
        let results = collect_slots(
            spec,
            slots
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )?;
        Ok(SweepRun { results, report })
    }

    /// The shared execution core behind [`SweepEngine::run`], the
    /// checkpointed runs, and the streaming grouped runs: executes the
    /// `pending` cell indices of `spec` (work-stealing when this engine has
    /// more than one thread) and hands each finished cell's result to
    /// `consume` *on the worker that ran it*, in completion order.
    ///
    /// `done_offset` counts cells already completed before this run (resumed
    /// sweeps), so progress reporting reflects the whole grid. A panic in
    /// `run_cell` or `consume`, or an `Err` from `consume`, cancels the
    /// sweep and is reported as a typed [`SweepError`] naming the cell.
    pub(crate) fn drive<P, R, F, C>(
        &self,
        spec: &SweepSpec<P>,
        pending: &[usize],
        done_offset: usize,
        run_cell: &F,
        consume: &C,
    ) -> Result<SweepReport, SweepError>
    where
        P: Sync,
        R: Send,
        F: Fn(&Cell<P>) -> R + Sync,
        C: Fn(&Cell<P>, R) -> Result<(), String> + Sync,
    {
        let total = spec.len();
        let work = pending.len();
        // TIMING: wall-clock feeds only the run report (throughput line on
        // stderr), never the sweep results — output stays deterministic.
        let start = Instant::now();
        if work == 0 {
            return Ok(SweepReport {
                cells: 0,
                threads: 1,
                elapsed: start.elapsed(),
                shards: vec![ShardStats::default()],
            });
        }
        let threads = self.threads.min(work);
        if threads == 1 {
            return self.drive_serial(spec, pending, done_offset, run_cell, consume, start);
        }

        // Claim the engine's worker count from the shared thread budget for
        // the duration of the sharded run: while the claim is alive, every
        // per-round parallel call inside a cell (`SimConfig::parallel`) fans
        // out to at most `budget / threads` threads, so
        // `threads(engine) × threads(round) ≤ budget` and a sweep of
        // parallel-enabled cells cannot oversubscribe the machine. When the
        // engine uses the whole budget, inner parallelism degrades to
        // inline sequential execution (results are identical either way).
        let _budget_claim = rayon::claim_threads(threads);

        // One contiguous shard of pending cell indices per worker.
        let chunk = work.div_ceil(threads);
        let shards: Vec<Mutex<VecDeque<usize>>> = (0..threads)
            .map(|w| {
                Mutex::new(
                    pending[(w * chunk).min(work)..((w + 1) * chunk).min(work)]
                        .iter()
                        .copied()
                        .collect(),
                )
            })
            .collect();
        let cancel = AtomicBool::new(false);
        let failure: Mutex<Option<SweepError>> = Mutex::new(None);
        let completed = AtomicUsize::new(0);
        // Report roughly ten times per sweep (always on the final cell).
        let report_step = (total / 10).max(1);

        let mut worker_stats: Vec<ShardStats> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let shards = &shards;
                let cancel = &cancel;
                let failure = &failure;
                let completed = &completed;
                handles.push(scope.spawn(move || {
                    let mut stats = ShardStats::default();
                    // ORDERING: cancellation is best-effort — a worker may
                    // finish one extra cell after the flag flips; the
                    // failure slot it reports through is a Mutex.
                    'work: while !cancel.load(Ordering::Relaxed) {
                        // Own shard first.
                        let mut next = lock_recover(&shards[w]).pop_front();
                        let mut stolen = false;
                        if next.is_none() {
                            // Steal the back half of the fullest shard. The
                            // length scan releases each lock before the
                            // steal, so the observed victim may be drained
                            // by the time we re-lock it — in that case retry
                            // the whole scan (another shard may still hold
                            // work) instead of exiting; only an all-empty
                            // scan ends the worker.
                            let (victim, observed_len) = (0..threads)
                                .filter(|&v| v != w)
                                .map(|v| (v, lock_recover(&shards[v]).len()))
                                .max_by_key(|&(_, len)| len)
                                .unwrap_or((w, 0));
                            if observed_len == 0 {
                                break 'work; // every shard is empty: sweep done
                            }
                            let mut q = lock_recover(&shards[victim]);
                            let keep = q.len() / 2;
                            let mut loot = q.split_off(keep);
                            drop(q);
                            next = loot.pop_front();
                            if next.is_none() {
                                continue 'work; // lost the race; rescan
                            }
                            stolen = true;
                            // All looted cells count as stolen, including
                            // the ones parked in our own shard for later.
                            stats.stolen += loot.len();
                            if !loot.is_empty() {
                                lock_recover(&shards[w]).extend(loot);
                            }
                        }
                        let Some(i) = next else {
                            break 'work; // own shard empty and nothing to steal
                        };
                        if stolen {
                            stats.stolen += 1;
                        }
                        let cell = &spec.cells()[i];
                        // `consume` (checkpoint persist, slot store, group
                        // fold) runs inside the same panic isolation as the
                        // cell itself, so a kill-switch panic or a store
                        // failure cancels the sweep exactly like a cell
                        // panic — attributed to this cell.
                        let outcome = {
                            let _span = dynnet_obs::labeled_span("sweep", "cell", &cell.label);
                            catch_unwind(AssertUnwindSafe(|| {
                                let r = run_cell(cell);
                                consume(cell, r)
                            }))
                        };
                        match outcome {
                            Ok(Ok(())) => {
                                stats.executed += 1;
                                // ORDERING: log-cadence counter only; results
                                // go via the slot Mutex and the join barrier.
                                let done =
                                    done_offset + completed.fetch_add(1, Ordering::Relaxed) + 1;
                                if done.is_multiple_of(report_step) || done == total {
                                    self.emit_progress(spec.name(), done, total, threads);
                                    if self.progress {
                                        let secs = start.elapsed().as_secs_f64();
                                        eprintln!(
                                            "  [sweep {}] {done}/{total} cells ({:.0}%) on {threads} threads, {:.1} cells/s",
                                            spec.name(),
                                            100.0 * done as f64 / total as f64,
                                            (done - done_offset) as f64 / secs.max(1e-9),
                                        );
                                    }
                                }
                            }
                            failed => {
                                let message = match failed {
                                    Ok(Err(message)) => message,
                                    Err(payload) => panic_message(payload.as_ref()),
                                    Ok(Ok(())) => String::new(), // unreachable: handled above
                                };
                                let mut slot = lock_recover(failure);
                                if slot.is_none() {
                                    *slot = Some(SweepError {
                                        sweep: spec.name().to_string(),
                                        cell_index: cell.index,
                                        cell_label: cell.label.clone(),
                                        message,
                                    });
                                }
                                // ORDERING: the failure payload is published
                                // via the `failure` Mutex above; this flag
                                // only hastens sibling shutdown.
                                cancel.store(true, Ordering::Relaxed);
                                break 'work;
                            }
                        }
                    }
                    stats
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(stats) => worker_stats.push(stats),
                    Err(payload) => {
                        // A worker died outside catch_unwind (should not
                        // happen); surface it as a sweep-level failure.
                        let mut slot = lock_recover(&failure);
                        if slot.is_none() {
                            *slot = Some(SweepError {
                                sweep: spec.name().to_string(),
                                cell_index: usize::MAX,
                                cell_label: "<worker>".to_string(),
                                message: panic_message(payload.as_ref()),
                            });
                        }
                    }
                }
            }
        });

        if let Some(err) = failure
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            return Err(err);
        }
        let report = SweepReport {
            cells: work,
            threads,
            elapsed: start.elapsed(),
            shards: worker_stats,
        };
        self.log_report(spec.name(), &report);
        Ok(report)
    }

    /// The `threads == 1` reference path of [`SweepEngine::drive`]: a plain
    /// in-order loop on the calling thread (still panic-isolated per cell).
    fn drive_serial<P, R, F, C>(
        &self,
        spec: &SweepSpec<P>,
        pending: &[usize],
        done_offset: usize,
        run_cell: &F,
        consume: &C,
        start: Instant,
    ) -> Result<SweepReport, SweepError>
    where
        F: Fn(&Cell<P>) -> R,
        C: Fn(&Cell<P>, R) -> Result<(), String>,
    {
        let total = spec.len();
        let report_step = (total / 10).max(1);
        let mut executed = 0usize;
        for &i in pending {
            let cell = &spec.cells()[i];
            let outcome = {
                let _span = dynnet_obs::labeled_span("sweep", "cell", &cell.label);
                catch_unwind(AssertUnwindSafe(|| {
                    let r = run_cell(cell);
                    consume(cell, r)
                }))
            };
            let failed = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(message)) => Some(message),
                Err(payload) => Some(panic_message(payload.as_ref())),
            };
            if let Some(message) = failed {
                return Err(SweepError {
                    sweep: spec.name().to_string(),
                    cell_index: cell.index,
                    cell_label: cell.label.clone(),
                    message,
                });
            }
            executed += 1;
            let done = done_offset + executed;
            if done.is_multiple_of(report_step) || done == total {
                self.emit_progress(spec.name(), done, total, 1);
            }
        }
        let report = SweepReport {
            cells: pending.len(),
            threads: 1,
            elapsed: start.elapsed(),
            shards: vec![ShardStats {
                executed: pending.len(),
                stolen: 0,
            }],
        };
        self.log_report(spec.name(), &report);
        Ok(report)
    }

    fn log_report(&self, name: &str, report: &SweepReport) {
        if !self.progress && self.sinks.is_empty() {
            return;
        }
        let shards: Vec<String> = report
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| format!("shard {i}: {} cells ({} stolen)", s.executed, s.stolen))
            .collect();
        let summary = format!(
            "{} cells on {} threads in {:.2}s ({:.1} cells/s; {})",
            report.cells,
            report.threads,
            report.elapsed.as_secs_f64(),
            report.throughput(),
            shards.join(", "),
        );
        for sink in &self.sinks {
            sink.finished(name, &summary);
        }
        if self.progress {
            eprintln!("  [sweep {name}] {summary}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_spec(n: usize) -> SweepSpec<usize> {
        let axis: Vec<usize> = (0..n).collect();
        SweepSpec::grid1("squares", &axis, |&i| (format!("i={i}"), i))
    }

    #[test]
    fn results_are_in_grid_order() {
        let spec = square_spec(97);
        for threads in [1, 3, 8] {
            let run = SweepEngine::new(threads)
                .run(&spec, |c| c.params * c.params)
                .unwrap();
            let expect: Vec<usize> = (0..97).map(|i| i * i).collect();
            assert_eq!(run.results(), &expect[..], "threads={threads}");
            assert_eq!(run.report().cells, 97);
            let executed: usize = run.report().shards.iter().map(|s| s.executed).sum();
            assert_eq!(executed, 97);
        }
    }

    #[test]
    fn uneven_cells_get_stolen() {
        // First shard holds all the slow cells; with 4 workers the others
        // must steal to finish. We can't assert steal counts (timing), but
        // the result must still be complete and ordered.
        let spec = square_spec(64);
        let run = SweepEngine::new(4)
            .run(&spec, |c| {
                if c.params < 16 {
                    std::thread::sleep(Duration::from_millis(2));
                }
                c.params
            })
            .unwrap();
        assert_eq!(run.results().len(), 64);
        assert!(run.results().iter().enumerate().all(|(i, &r)| i == r));
        assert_eq!(run.report().threads, 4);
        assert_eq!(run.report().shards.len(), 4);
    }

    #[test]
    fn empty_spec_is_ok() {
        let spec: SweepSpec<u8> = SweepSpec::new("empty");
        let run = SweepEngine::new(4).run(&spec, |_| 0u8).unwrap();
        assert!(run.results().is_empty());
        assert!(run.report().throughput().is_infinite() || run.report().cells == 0);
    }

    #[test]
    fn panic_reports_failing_cell() {
        let spec = square_spec(12);
        for threads in [1, 4] {
            let err = match SweepEngine::new(threads).run(&spec, |c| {
                if c.params == 7 {
                    panic!("bad cell seven");
                }
                c.params
            }) {
                Err(e) => e,
                Ok(_) => panic!("expected the sweep to fail"),
            };
            assert_eq!(err.cell_index, 7, "threads={threads}");
            assert_eq!(err.cell_label, "i=7");
            assert!(err.message.contains("bad cell seven"));
            assert!(err.to_string().contains("squares"));
        }
    }

    #[test]
    fn serial_twin_and_threads_accessor() {
        let engine = SweepEngine::new(8);
        assert_eq!(engine.threads(), 8);
        assert_eq!(engine.serial().threads(), 1);
        assert_eq!(SweepEngine::new(0).threads(), 1);
    }
}
