//! Per-cell sweep checkpointing: the durable store that makes a killed
//! sweep resumable.
//!
//! A [`CheckpointStore`] persists every finished cell's result under its
//! grid index in a checkpoint directory:
//!
//! ```text
//! <dir>/manifest.tsv          — header + one `cell` line per finished cell
//! <dir>/cells/<index>.cell    — framed, checksummed result payload
//! ```
//!
//! The manifest header fingerprints the [`SweepSpec`] (name, cell count,
//! FNV-1a over the cell labels), so a checkpoint can never be resumed
//! against a different grid. Cell files are written to a temp name, fsynced
//! and renamed — a crash mid-write leaves no partial cell — and the
//! manifest line is appended only after the rename, so every listed cell
//! exists. A torn trailing manifest line (crash mid-append) is tolerated
//! and healed on resume.
//!
//! On [`CheckpointStore::resume`] each listed cell is re-verified: the
//! frame checksum, grid index, and manifest entry must all agree and the
//! payload must decode as the expected result type. A cell failing any
//! check is **discarded and recomputed** (counted by the
//! `store.cells_recomputed` metric) — corruption is never silently
//! trusted. Valid cells are loaded (`store.cells_skipped`) and their cells
//! are not re-run.
//!
//! Results must implement [`CellValue`], the compact binary encoding of
//! checkpointable result types. The encoding is exact (`f64` round-trips
//! bit-for-bit), so a resumed sweep's aggregated CSV is byte-identical to
//! an uninterrupted run's.

use crate::engine::{collect_slots, lock_recover, SweepEngine, SweepError, SweepRun};
use crate::spec::{Cell, SweepSpec};
use dynnet_graph::codec::{fnv1a64, read_varint, write_varint, CodecError};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic bytes opening every checkpoint cell file.
pub const CELL_MAGIC: [u8; 4] = *b"DNCL";
/// Current checkpoint format version (cell files and manifest header).
pub const CHECKPOINT_VERSION: u8 = 1;

/// A failure of the checkpoint store (distinct from a cell failure).
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A payload failed to encode or decode.
    Codec(CodecError),
    /// The checkpoint on disk belongs to a different sweep grid.
    SpecMismatch {
        /// The checkpoint directory.
        dir: PathBuf,
        /// What disagreed (name, cell count, or label fingerprint).
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, error } => {
                write!(f, "checkpoint io error at {}: {error}", path.display())
            }
            StoreError::Codec(e) => write!(f, "checkpoint codec error: {e}"),
            StoreError::SpecMismatch { dir, detail } => write!(
                f,
                "checkpoint at {} belongs to a different sweep: {detail}",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { error, .. } => Some(error),
            StoreError::Codec(e) => Some(e),
            StoreError::SpecMismatch { .. } => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

fn io_err(path: &Path, error: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        error,
    }
}

// ---------------------------------------------------------------------------
// CellValue: the checkpointable result encoding
// ---------------------------------------------------------------------------

/// Binary encoding of checkpointable sweep-cell results.
///
/// Implementations must be exact round-trips (`decode(encode(x)) == x`
/// bit-for-bit — `f64` goes through [`f64::to_bits`]), because resumed
/// sweeps must aggregate to byte-identical output. Decoders must validate
/// and fail typed on corrupt input, never panic.
pub trait CellValue: Sized {
    /// Appends this value's encoding to `out`.
    fn encode_value(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `input`, advancing it.
    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError>;
}

impl CellValue for u64 {
    fn encode_value(&self, out: &mut Vec<u8>) {
        write_varint(out, *self);
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        read_varint(input)
    }
}

impl CellValue for usize {
    fn encode_value(&self, out: &mut Vec<u8>) {
        write_varint(out, *self as u64);
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        usize::try_from(read_varint(input)?)
            .map_err(|_| CodecError::InvalidValue("usize overflow".to_string()))
    }
}

impl CellValue for u32 {
    fn encode_value(&self, out: &mut Vec<u8>) {
        write_varint(out, u64::from(*self));
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        u32::try_from(read_varint(input)?)
            .map_err(|_| CodecError::InvalidValue("u32 overflow".to_string()))
    }
}

impl CellValue for i64 {
    fn encode_value(&self, out: &mut Vec<u8>) {
        write_varint(out, dynnet_graph::codec::zigzag(*self));
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        read_varint(input).map(dynnet_graph::codec::unzigzag)
    }
}

impl CellValue for bool {
    fn encode_value(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (&b, rest) = input.split_first().ok_or(CodecError::UnexpectedEof)?;
        *input = rest;
        match b {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidValue(format!("bad bool byte {other}"))),
        }
    }
}

impl CellValue for f64 {
    /// Bit-exact: the checkpointed value renders to the same decimal string
    /// as the freshly computed one, keeping resumed CSVs byte-identical.
    fn encode_value(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        let (bytes, rest) = input.split_at_checked(8).ok_or(CodecError::UnexpectedEof)?;
        *input = rest;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(buf)))
    }
}

impl CellValue for String {
    fn encode_value(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)?;
        if len > input.len() as u64 {
            return Err(CodecError::UnexpectedEof);
        }
        let (bytes, rest) = input.split_at(len as usize);
        *input = rest;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::InvalidValue("invalid utf-8 in string".to_string()))
    }
}

impl<T: CellValue> CellValue for Vec<T> {
    fn encode_value(&self, out: &mut Vec<u8>) {
        write_varint(out, self.len() as u64);
        for item in self {
            item.encode_value(out);
        }
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)?;
        // Every element costs at least one input byte, so a corrupt length
        // cannot allocate past the remaining input.
        if len > input.len() as u64 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut items = Vec::with_capacity(len as usize);
        for _ in 0..len {
            items.push(T::decode_value(input)?);
        }
        Ok(items)
    }
}

impl<T: CellValue> CellValue for Option<T> {
    fn encode_value(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_value(out);
            }
        }
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        match bool::decode_value(input)? {
            false => Ok(None),
            true => T::decode_value(input).map(Some),
        }
    }
}

macro_rules! tuple_cell_value {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: CellValue),+> CellValue for ($($name,)+) {
            fn encode_value(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode_value(out);)+
            }

            fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(($($name::decode_value(input)?,)+))
            }
        }
    };
}

tuple_cell_value!(A: 0, B: 1);
tuple_cell_value!(A: 0, B: 1, C: 2);
tuple_cell_value!(A: 0, B: 1, C: 2, D: 3);
tuple_cell_value!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Verification results are sweep-cell results for the guarantee
/// experiments (E12's window sweep), so they checkpoint too. The
/// `InvalidRounds` component is serialized as its parts (runs, total,
/// dropped) and revalidated on decode through
/// [`dynnet_core::verify::InvalidRounds::from_parts`] — a corrupt
/// checkpoint fails typed, it cannot smuggle in a summary that violates
/// the run-encoding invariants.
impl CellValue for dynnet_core::verify::VerificationSummary {
    fn encode_value(&self, out: &mut Vec<u8>) {
        self.rounds_checked.encode_value(out);
        self.rounds_valid.encode_value(out);
        self.rounds_partial_valid.encode_value(out);
        self.total_packing_violations.encode_value(out);
        self.total_covering_violations.encode_value(out);
        self.total_undecided.encode_value(out);
        self.first_valid_round.encode_value(out);
        self.invalid_rounds.runs().to_vec().encode_value(out);
        self.invalid_rounds.len().encode_value(out);
        self.invalid_rounds.truncated().encode_value(out);
    }

    fn decode_value(input: &mut &[u8]) -> Result<Self, CodecError> {
        let rounds_checked = usize::decode_value(input)?;
        let rounds_valid = usize::decode_value(input)?;
        let rounds_partial_valid = usize::decode_value(input)?;
        let total_packing_violations = usize::decode_value(input)?;
        let total_covering_violations = usize::decode_value(input)?;
        let total_undecided = usize::decode_value(input)?;
        let first_valid_round = Option::<usize>::decode_value(input)?;
        let runs = Vec::<(usize, usize)>::decode_value(input)?;
        let total = usize::decode_value(input)?;
        let dropped = usize::decode_value(input)?;
        let invalid_rounds =
            dynnet_core::verify::InvalidRounds::from_parts(runs, total, dropped)
                .map_err(|e| CodecError::InvalidValue(format!("invalid_rounds: {e}")))?;
        Ok(dynnet_core::verify::VerificationSummary {
            rounds_checked,
            rounds_valid,
            rounds_partial_valid,
            total_packing_violations,
            total_covering_violations,
            total_undecided,
            first_valid_round,
            invalid_rounds,
        })
    }
}

/// Encodes a value to a standalone payload.
pub fn encode_cell_value<R: CellValue>(value: &R) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_value(&mut out);
    out
}

/// Decodes a standalone payload, requiring full consumption.
pub fn decode_cell_value<R: CellValue>(bytes: &[u8]) -> Result<R, CodecError> {
    let mut input = bytes;
    let value = R::decode_value(&mut input)?;
    if !input.is_empty() {
        return Err(CodecError::TrailingBytes(input.len()));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Kill switch (fault injection)
// ---------------------------------------------------------------------------

/// Name of the environment variable that arms the process-exit kill hook:
/// when set to `N`, the store calls `std::process::exit(42)` right after
/// the `N`-th cell of this process persists — a true crash for the CI
/// resume-smoke test (nothing unwinds, no destructor runs).
pub const KILL_ENV: &str = "DYNNET_KILL_AFTER_CELLS";

/// Exit code of the environment kill hook.
pub const KILL_EXIT_CODE: i32 = 42;

/// Fault-injection behavior armed on a [`CheckpointStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KillMode {
    /// No fault injection.
    None,
    /// Panic (unwinds into a [`SweepError`]) after `N` persisted cells —
    /// the in-process fault used by the integration tests.
    Panic(u64),
    /// `std::process::exit(42)` after `N` persisted cells — the true-crash
    /// fault used by the CI resume-smoke step, armed via [`KILL_ENV`].
    Exit(u64),
}

/// Programmatic kill switch: arms a [`CheckpointStore`] to panic after `N`
/// cells have been persisted, simulating a crash that strands a partially
/// complete checkpoint. The panic unwinds through the sweep engine's
/// per-cell isolation into a typed [`SweepError`], so tests observe an
/// ordinary error and then exercise resume.
#[derive(Clone, Copy, Debug)]
pub struct KillSwitch {
    /// Number of cells allowed to persist before the switch fires.
    pub after_cells: u64,
}

impl KillSwitch {
    /// A switch that fires after `after_cells` cells have persisted.
    pub fn after(after_cells: u64) -> KillSwitch {
        KillSwitch { after_cells }
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Summary of what a [`CheckpointStore`] loaded for a spec.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Cells loaded from the checkpoint (skipped by the engine).
    pub loaded: usize,
    /// Cells listed in the manifest but discarded (bad checksum, bad
    /// index, undecodable payload) — these are recomputed.
    pub recomputed: usize,
}

struct ManifestState {
    file: Option<File>,
    persisted: u64,
}

/// The durable per-cell result store behind crash-resumable sweeps. See
/// the [module docs](self) for the on-disk layout and guarantees.
pub struct CheckpointStore {
    dir: PathBuf,
    resume: bool,
    kill: KillMode,
    manifest: Mutex<ManifestState>,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("resume", &self.resume)
            .field("kill", &self.kill)
            .finish()
    }
}

/// Fingerprint of a spec: name, cell count, and an FNV-1a over the labels,
/// so a checkpoint directory can never be applied to a different grid.
fn spec_fingerprint<P>(spec: &SweepSpec<P>) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(spec.name().as_bytes());
    for cell in spec.cells() {
        bytes.push(0);
        bytes.extend_from_slice(cell.label.as_bytes());
    }
    fnv1a64(&bytes)
}

impl CheckpointStore {
    /// Opens a *fresh* checkpoint at `dir`, discarding any existing state.
    pub fn create(dir: impl Into<PathBuf>) -> Result<CheckpointStore, StoreError> {
        CheckpointStore::open(dir, false)
    }

    /// Opens the checkpoint at `dir` for resumption: completed cells
    /// recorded there are verified, loaded, and skipped by the next
    /// checkpointed run.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<CheckpointStore, StoreError> {
        CheckpointStore::open(dir, true)
    }

    /// Opens a checkpoint directory; `resume` selects between reusing and
    /// discarding existing state. The [`KILL_ENV`] environment hook is
    /// armed here when set.
    pub fn open(dir: impl Into<PathBuf>, resume: bool) -> Result<CheckpointStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("cells")).map_err(|e| io_err(&dir, e))?;
        let kill = match std::env::var(KILL_ENV) {
            Ok(v) => match v.parse::<u64>() {
                Ok(n) => KillMode::Exit(n),
                Err(_) => KillMode::None,
            },
            Err(_) => KillMode::None,
        };
        Ok(CheckpointStore {
            dir,
            resume,
            kill,
            manifest: Mutex::new(ManifestState {
                file: None,
                persisted: 0,
            }),
        })
    }

    /// Arms the programmatic [`KillSwitch`]: the store panics right after
    /// the given number of cells has been persisted by this process.
    pub fn with_kill_switch(mut self, switch: KillSwitch) -> CheckpointStore {
        self.kill = KillMode::Panic(switch.after_cells);
        self
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of cells persisted by this process (not counting loaded ones).
    pub fn cells_persisted(&self) -> u64 {
        lock_recover(&self.manifest).persisted
    }

    /// Whether a durable cell file exists for `index` (fault-injection
    /// tests assert a killed cell left nothing behind).
    pub fn cell_file_exists(&self, index: usize) -> bool {
        self.cell_path(index).exists()
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.tsv")
    }

    fn cell_path(&self, index: usize) -> PathBuf {
        self.dir.join("cells").join(format!("{index}.cell"))
    }

    fn header_line<P>(spec: &SweepSpec<P>) -> String {
        format!(
            "dynnet-checkpoint v{CHECKPOINT_VERSION}\t{:016x}\t{}\t{}\n",
            spec_fingerprint(spec),
            spec.len(),
            spec.name()
        )
    }

    /// Loads (and verifies) the completed cells recorded for `spec`,
    /// returning one slot per grid cell, and leaves the manifest open for
    /// appending the cells the engine is about to run. Called once per
    /// checkpointed run by the engine.
    pub(crate) fn load<R: CellValue, P>(
        &self,
        spec: &SweepSpec<P>,
    ) -> Result<(Vec<Option<R>>, LoadSummary), StoreError> {
        let mut slots: Vec<Option<R>> = (0..spec.len()).map(|_| None).collect();
        let mut summary = LoadSummary::default();
        let manifest_path = self.manifest_path();
        let mut valid_lines: Vec<String> = Vec::new();
        if self.resume {
            match std::fs::read_to_string(&manifest_path) {
                Ok(content) => {
                    let mut lines = content.lines();
                    if let Some(header) = lines.next() {
                        let expected = Self::header_line(spec);
                        if header != expected.trim_end() {
                            return Err(StoreError::SpecMismatch {
                                dir: self.dir.clone(),
                                detail: format!(
                                    "manifest header {header:?} != expected {:?}",
                                    expected.trim_end()
                                ),
                            });
                        }
                        for line in lines {
                            // A torn trailing line (crash mid-append) or any
                            // malformed entry ends the trusted prefix; cells
                            // after it are recomputed.
                            let Some((index, checksum)) = parse_cell_line(line) else {
                                break;
                            };
                            if index >= spec.len() || slots[index].is_some() {
                                break;
                            }
                            match self.load_cell::<R>(index, checksum) {
                                Some(value) => {
                                    slots[index] = Some(value);
                                    summary.loaded += 1;
                                    valid_lines.push(line.to_string());
                                }
                                None => summary.recomputed += 1,
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&manifest_path, e)),
            }
        }
        // Rewrite the manifest to exactly the verified prefix (healing torn
        // lines and dropping corrupt cells), then keep it open for append.
        let tmp = self.dir.join("manifest.tsv.tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(Self::header_line(spec).as_bytes())
                .map_err(|e| io_err(&tmp, e))?;
            for line in &valid_lines {
                f.write_all(line.as_bytes()).map_err(|e| io_err(&tmp, e))?;
                f.write_all(b"\n").map_err(|e| io_err(&tmp, e))?;
            }
            f.sync_data().map_err(|e| io_err(&tmp, e))?;
        }
        std::fs::rename(&tmp, &manifest_path).map_err(|e| io_err(&manifest_path, e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(&manifest_path)
            .map_err(|e| io_err(&manifest_path, e))?;
        lock_recover(&self.manifest).file = Some(file);
        let reg = dynnet_obs::registry();
        reg.counter("store.cells_skipped")
            .add(summary.loaded as u64);
        reg.counter("store.cells_recomputed")
            .add(summary.recomputed as u64);
        Ok((slots, summary))
    }

    /// Verifies and decodes one checkpointed cell; any mismatch (missing
    /// file, frame corruption, wrong index, checksum disagreement with the
    /// manifest or the payload, undecodable value) discards the cell.
    fn load_cell<R: CellValue>(&self, index: usize, manifest_checksum: u64) -> Option<R> {
        let path = self.cell_path(index);
        let bytes = std::fs::read(&path).ok()?;
        let (header, rest) = bytes.split_at_checked(5)?;
        if header[..4] != CELL_MAGIC || header[4] != CHECKPOINT_VERSION {
            return None;
        }
        let mut input = rest;
        let stored_index = read_varint(&mut input).ok()?;
        if stored_index != index as u64 {
            return None;
        }
        let len = read_varint(&mut input).ok()?;
        if len + 8 != input.len() as u64 {
            return None;
        }
        let (payload, checksum_bytes) = input.split_at(len as usize);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(checksum_bytes);
        let stored = u64::from_le_bytes(stored);
        if stored != manifest_checksum || stored != fnv1a64(payload) {
            return None;
        }
        decode_cell_value::<R>(payload).ok()
    }

    /// Persists one finished cell: frames and checksums the encoded result,
    /// writes it to a temp file, fsyncs, renames it into place, and appends
    /// the manifest line. Fires the armed kill switch after the persist
    /// completes (so exactly `N` cells are durable when it fires).
    pub(crate) fn persist<R: CellValue, P>(
        &self,
        cell: &Cell<P>,
        value: &R,
    ) -> Result<(), StoreError> {
        let payload = encode_cell_value(value);
        let checksum = fnv1a64(&payload);
        let mut frame = Vec::with_capacity(payload.len() + 24);
        frame.extend_from_slice(&CELL_MAGIC);
        frame.push(CHECKPOINT_VERSION);
        write_varint(&mut frame, cell.index as u64);
        write_varint(&mut frame, payload.len() as u64);
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&checksum.to_le_bytes());

        let final_path = self.cell_path(cell.index);
        let tmp_path = self.dir.join("cells").join(format!(".tmp-{}", cell.index));
        {
            let mut f = File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
            f.write_all(&frame).map_err(|e| io_err(&tmp_path, e))?;
            f.sync_data().map_err(|e| io_err(&tmp_path, e))?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, e))?;

        let line = format!("cell\t{}\t{checksum:016x}\n", cell.index);
        let persisted = {
            let mut state = lock_recover(&self.manifest);
            if let Some(f) = &mut state.file {
                f.write_all(line.as_bytes())
                    .map_err(|e| io_err(&self.manifest_path(), e))?;
            }
            state.persisted += 1;
            state.persisted
        };
        let reg = dynnet_obs::registry();
        reg.counter("store.cells_persisted").inc();
        reg.counter("store.bytes_written")
            .add((frame.len() + line.len()) as u64);
        reg.counter("store.fsync_count").inc();

        match self.kill {
            KillMode::Panic(n) if persisted >= n => {
                // INVARIANT: crash-injection harness — only reachable when
                // the kill-switch env variable is set by a resilience test.
                panic!("kill switch fired after {persisted} persisted cells")
            }
            KillMode::Exit(n) if persisted >= n => {
                eprintln!("[checkpoint] {KILL_ENV} fired after {persisted} cells; exiting");
                std::process::exit(KILL_EXIT_CODE);
            }
            _ => Ok(()),
        }
    }
}

/// Parses one `cell\t<index>\t<checksum-hex>` manifest line.
fn parse_cell_line(line: &str) -> Option<(usize, u64)> {
    let mut parts = line.split('\t');
    if parts.next() != Some("cell") {
        return None;
    }
    let index: usize = parts.next()?.parse().ok()?;
    let checksum = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((index, checksum))
}

fn store_sweep_error<P>(spec: &SweepSpec<P>, e: StoreError) -> SweepError {
    SweepError {
        sweep: spec.name().to_string(),
        cell_index: usize::MAX,
        cell_label: "<store>".to_string(),
        message: e.to_string(),
    }
}

impl SweepEngine {
    /// Runs `spec` with per-cell checkpointing: cells already completed in
    /// `store` are verified and loaded instead of re-run, every newly
    /// finished cell is persisted before it counts as done, and the merged
    /// results come back in grid order — byte-identical to an
    /// uninterrupted [`SweepEngine::run`].
    pub fn run_checkpointed<P, R, F>(
        &self,
        spec: &SweepSpec<P>,
        store: &CheckpointStore,
        run_cell: F,
    ) -> Result<SweepRun<R>, SweepError>
    where
        P: Sync,
        R: Send + CellValue,
        F: Fn(&Cell<P>) -> R + Sync,
    {
        let (loaded, _summary) = store
            .load::<R, P>(spec)
            .map_err(|e| store_sweep_error(spec, e))?;
        let pending: Vec<usize> = loaded
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        let done_offset = spec.len() - pending.len();
        let slots = Mutex::new(loaded);
        let report = self.drive(
            spec,
            &pending,
            done_offset,
            &run_cell,
            &|cell: &Cell<P>, r: R| {
                store.persist(cell, &r).map_err(|e| e.to_string())?;
                // INVARIANT: cell.index < spec.len() by construction (it is
                // the cell's insertion position) and load() sized the slot
                // vector to spec.len().
                lock_recover(&slots)[cell.index] = Some(r);
                Ok(())
            },
        )?;
        let results = collect_slots(
            spec,
            slots
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )?;
        Ok(SweepRun::from_parts(results, report))
    }

    /// Convenience wrapper: resumes (or starts) the checkpoint at `dir`
    /// and runs `spec` through it.
    pub fn resume_from<P, R, F>(
        &self,
        spec: &SweepSpec<P>,
        dir: impl Into<PathBuf>,
        run_cell: F,
    ) -> Result<SweepRun<R>, SweepError>
    where
        P: Sync,
        R: Send + CellValue,
        F: Fn(&Cell<P>) -> R + Sync,
    {
        let store = CheckpointStore::resume(dir).map_err(|e| store_sweep_error(spec, e))?;
        self.run_checkpointed(spec, &store, run_cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dynnet-checkpoint-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn square_spec(n: usize) -> SweepSpec<usize> {
        let axis: Vec<usize> = (0..n).collect();
        SweepSpec::grid1("squares", &axis, |&i| (format!("i={i}"), i))
    }

    #[test]
    fn cell_value_roundtrips() {
        let mut out = Vec::new();
        let v = (
            42u64,
            -7i64,
            1.5f64,
            "hello".to_string(),
            vec![1.0f64, f64::NAN.copysign(-1.0)],
        );
        v.encode_value(&mut out);
        let back: (u64, i64, f64, String, Vec<f64>) = decode_cell_value(&out).unwrap();
        assert_eq!(back.0, 42);
        assert_eq!(back.1, -7);
        assert_eq!(back.2.to_bits(), 1.5f64.to_bits());
        assert_eq!(back.3, "hello");
        // NaN round-trips bit-exactly — equality on bits, not value.
        assert_eq!(back.4[1].to_bits(), v.4[1].to_bits());
        assert!(decode_cell_value::<u64>(&[]).is_err());
    }

    #[test]
    fn verification_summary_roundtrips() {
        use dynnet_core::verify::VerificationSummary;
        let mut summary = VerificationSummary {
            rounds_checked: 100,
            rounds_valid: 90,
            rounds_partial_valid: 95,
            total_packing_violations: 3,
            total_covering_violations: 4,
            total_undecided: 17,
            first_valid_round: Some(6),
            invalid_rounds: Default::default(),
        };
        for r in [6usize, 7, 8, 20, 41, 42] {
            summary.invalid_rounds.push(r);
        }
        let back: VerificationSummary = decode_cell_value(&encode_cell_value(&summary)).unwrap();
        assert_eq!(back, summary);
        assert_eq!(back.invalid_rounds.runs(), &[(6, 3), (20, 1), (41, 2)]);
    }

    #[test]
    fn verification_summary_roundtrips_past_run_cap() {
        use dynnet_core::verify::{InvalidRounds, VerificationSummary};
        let mut summary = VerificationSummary::default();
        // Alternate valid/invalid so every invalid round is its own run;
        // push past the cap so indices get dropped but the count stays.
        for r in 0..2 * (InvalidRounds::MAX_RUNS + 50) {
            if r % 2 == 0 {
                summary.invalid_rounds.push(r);
            }
        }
        assert!(summary.invalid_rounds.truncated() > 0);
        let back: VerificationSummary = decode_cell_value(&encode_cell_value(&summary)).unwrap();
        assert_eq!(back, summary);
        assert_eq!(
            back.invalid_rounds.truncated(),
            summary.invalid_rounds.truncated()
        );
    }

    #[test]
    fn corrupt_verification_summary_fails_typed() {
        use dynnet_core::verify::VerificationSummary;
        let mut summary = VerificationSummary::default();
        summary.invalid_rounds.push(5);
        summary.invalid_rounds.push(9);
        let bytes = encode_cell_value(&summary);
        // Truncated payloads and length-extended payloads both fail.
        assert!(decode_cell_value::<VerificationSummary>(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_cell_value::<VerificationSummary>(&extended).is_err());
        // A payload whose run list violates the ascending/non-adjacent
        // invariant is rejected by from_parts, not accepted silently.
        let bad = dynnet_core::verify::InvalidRounds::from_parts(vec![(9, 1), (5, 1)], 2, 0);
        assert!(bad.is_err());
    }

    #[test]
    fn checkpointed_run_equals_plain_run() {
        let spec = square_spec(23);
        let dir = tmp_dir("plain");
        let engine = SweepEngine::new(3);
        let plain = engine.run(&spec, |c| c.params as u64 * 3).unwrap();
        let store = CheckpointStore::create(&dir).unwrap();
        let ckpt = engine
            .run_checkpointed(&spec, &store, |c| c.params as u64 * 3)
            .unwrap();
        assert_eq!(plain.results(), ckpt.results());
        // Second run over the same store: everything loads, nothing runs.
        let store2 = CheckpointStore::resume(&dir).unwrap();
        let again = engine
            .run_checkpointed(&spec, &store2, |_c| -> u64 {
                panic!("no cell should re-run")
            })
            .unwrap();
        assert_eq!(plain.results(), again.results());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_switch_strands_then_resume_completes() {
        let spec = square_spec(16);
        let dir = tmp_dir("kill");
        let engine = SweepEngine::new(1);
        let store = CheckpointStore::create(&dir)
            .unwrap()
            .with_kill_switch(KillSwitch::after(5));
        let err = engine
            .run_checkpointed(&spec, &store, |c| c.params as u64)
            .expect_err("kill switch must cancel the sweep");
        assert!(err.message.contains("kill switch"));
        assert_eq!(store.cells_persisted(), 5);

        let resumed: SweepRun<u64> = engine
            .resume_from(&spec, &dir, |c| c.params as u64)
            .unwrap();
        assert_eq!(
            resumed.results(),
            (0..16).map(|i| i as u64).collect::<Vec<_>>().as_slice()
        );
        // Only the missing 11 cells ran.
        assert_eq!(resumed.report().cells, 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_mismatch_is_rejected() {
        let dir = tmp_dir("mismatch");
        let spec = square_spec(4);
        let engine = SweepEngine::new(1);
        let store = CheckpointStore::create(&dir).unwrap();
        engine
            .run_checkpointed(&spec, &store, |c| c.params as u64)
            .unwrap();
        let other = square_spec(5);
        let err = engine
            .resume_from(&other, &dir, |c| c.params as u64)
            .expect_err("different grid must be rejected");
        assert!(err.message.contains("different sweep"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_manifest_line_is_healed() {
        let dir = tmp_dir("torn");
        let spec = square_spec(6);
        let engine = SweepEngine::new(1);
        let store = CheckpointStore::create(&dir).unwrap();
        engine
            .run_checkpointed(&spec, &store, |c| c.params as u64)
            .unwrap();
        // Simulate a crash mid-append: truncate the manifest mid-line.
        let path = dir.join("manifest.tsv");
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &content[..content.len() - 3]).unwrap();
        let resumed: SweepRun<u64> = engine
            .resume_from(&spec, &dir, |c| c.params as u64)
            .unwrap();
        assert_eq!(resumed.results().len(), 6);
        // The torn last cell re-ran.
        assert_eq!(resumed.report().cells, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
