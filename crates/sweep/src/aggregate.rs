//! Deterministic aggregation of sweep results into [`Table`]s.
//!
//! An [`Aggregator`] folds the `(cell, result)` pairs of a finished sweep —
//! always in grid order, regardless of which thread finished which cell
//! first — into one or more [`Table`]s. Two reusable aggregators cover the
//! common experiment shapes:
//!
//! * [`CellRows`] — each cell renders to zero or more table rows (one table
//!   row per grid point, e.g. a churn-rate sweep).
//! * [`GroupedSummary`] — consecutive cells sharing a group key (e.g. all
//!   seeds of one `(family, n)` point) are folded into a [`Summary`] and
//!   rendered as one row; the per-group summaries remain available for
//!   second-stage fits (the `O(log n)` shape checks).

use crate::engine::SweepRun;
use crate::spec::{Cell, SweepSpec};
use dynnet_metrics::{RowSink, Summary, Table};

/// Folds per-cell results into tables, in deterministic grid order.
pub trait Aggregator<P, R> {
    /// Consumes one cell's result. Called once per cell, in grid order.
    fn fold(&mut self, cell: &Cell<P>, result: R);

    /// Produces the aggregated tables (called once, after the last fold).
    fn finish(&mut self) -> Vec<Table>;
}

/// Folds a finished run through `agg` in grid order and returns the
/// aggregator (so callers can extract secondary products such as fit
/// points). Most callers use [`SweepEngine::aggregate`] instead.
///
/// [`SweepEngine::aggregate`]: crate::SweepEngine::aggregate
pub fn fold<P, R, A: Aggregator<P, R>>(spec: &SweepSpec<P>, run: SweepRun<R>, mut agg: A) -> A {
    for (cell, result) in spec.cells().iter().zip(run.into_results()) {
        agg.fold(cell, result);
    }
    agg
}

impl crate::engine::SweepEngine {
    /// Runs `spec` and aggregates the results in one step: executes every
    /// cell (work-stealing across this engine's threads), folds the results
    /// in grid order through `agg`, and returns the finished tables.
    pub fn aggregate<P, R, F, A>(
        &self,
        spec: &SweepSpec<P>,
        run_cell: F,
        agg: A,
    ) -> Result<Vec<Table>, crate::engine::SweepError>
    where
        P: Sync,
        R: Send,
        F: Fn(&Cell<P>) -> R + Sync,
        A: Aggregator<P, R>,
    {
        let run = self.run(spec, run_cell)?;
        let mut agg = fold(spec, run, agg);
        Ok(agg.finish())
    }
}

/// Renders zero or more table rows per cell into a single table.
///
/// Rows are keyed by the cell's grid index through a [`RowSink`], so the
/// assembled table is deterministic by construction.
pub struct CellRows<F> {
    sink: Option<RowSink>,
    render: F,
}

impl<F> CellRows<F> {
    /// Creates an aggregator rendering into a table with the given title and
    /// headers; `render` maps each `(cell, result)` to the rows it
    /// contributes.
    pub fn new(title: impl Into<String>, headers: &[&str], render: F) -> Self {
        CellRows {
            sink: Some(RowSink::new(title, headers)),
            render,
        }
    }
}

impl<P, R, F> Aggregator<P, R> for CellRows<F>
where
    F: FnMut(&Cell<P>, R) -> Vec<Vec<String>>,
{
    fn fold(&mut self, cell: &Cell<P>, result: R) {
        // Folding after finish is a no-op rather than a panic; finish()
        // empties the sink exactly once.
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        for row in (self.render)(cell, result) {
            sink.push(cell.index, row);
        }
    }

    fn finish(&mut self) -> Vec<Table> {
        vec![self
            .sink
            .take()
            .map(RowSink::into_table)
            .unwrap_or_default()]
    }
}

/// Summarizes runs of consecutive cells sharing a group key into one row per
/// group (the classic "mean/max over seeds" pattern of scaling sweeps).
///
/// `key` extracts the group key from a cell (e.g. `(family, n)`), `value`
/// extracts the sample the cell contributes, and `row` renders one finished
/// group. Cells of one group must be consecutive in grid order — which the
/// row-major [`SweepSpec`] grids guarantee when the innermost axis is the
/// one being summarized over (seeds).
pub struct GroupedSummary<K, FK, FV, FR> {
    sink: Option<RowSink>,
    key: FK,
    value: FV,
    row: FR,
    current: Option<(K, usize, Vec<f64>)>,
    groups: Vec<(K, Summary)>,
}

impl<K, FK, FV, FR> GroupedSummary<K, FK, FV, FR> {
    /// Creates a grouped-summary aggregator rendering into a table with the
    /// given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str], key: FK, value: FV, row: FR) -> Self {
        GroupedSummary {
            sink: Some(RowSink::new(title, headers)),
            key,
            value,
            row,
            current: None,
            groups: Vec::new(),
        }
    }

    /// The finished `(key, summary)` groups, in grid order. Populated by
    /// [`Aggregator::finish`]; used for second-stage aggregation such as
    /// least-squares fits over group means.
    pub fn groups(&self) -> &[(K, Summary)] {
        &self.groups
    }
}

impl<P, R, K, FK, FV, FR> Aggregator<P, R> for GroupedSummary<K, FK, FV, FR>
where
    K: PartialEq + Clone,
    FK: FnMut(&Cell<P>) -> K,
    FV: FnMut(&Cell<P>, &R) -> f64,
    FR: FnMut(&K, &Summary) -> Vec<String>,
{
    fn fold(&mut self, cell: &Cell<P>, result: R) {
        let k = (self.key)(cell);
        let v = (self.value)(cell, &result);
        match &mut self.current {
            Some((cur, _, samples)) if *cur == k => samples.push(v),
            _ => {
                self.flush();
                self.current = Some((k, cell.index, vec![v]));
            }
        }
    }

    fn finish(&mut self) -> Vec<Table> {
        self.flush();
        vec![self
            .sink
            .take()
            .map(RowSink::into_table)
            .unwrap_or_default()]
    }
}

impl<K, FK, FV, FR> GroupedSummary<K, FK, FV, FR> {
    fn flush(&mut self)
    where
        K: Clone,
        FR: FnMut(&K, &Summary) -> Vec<String>,
    {
        if let Some((k, first_index, samples)) = self.current.take() {
            let summary = Summary::of(&samples);
            let row = (self.row)(&k, &summary);
            if let Some(sink) = self.sink.as_mut() {
                sink.push(first_index, row);
            }
            self.groups.push((k, summary));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepEngine;

    #[test]
    fn cell_rows_in_grid_order() {
        let spec = SweepSpec::grid2("t", &[1, 2], &[10, 20], |a, b| {
            (format!("{a}/{b}"), (*a, *b))
        });
        let tables = SweepEngine::new(4)
            .aggregate(
                &spec,
                |c| c.params.0 * c.params.1,
                CellRows::new(
                    "products",
                    &["label", "product"],
                    |c: &Cell<(i32, i32)>, r| vec![vec![c.label.clone(), format!("{r}")]],
                ),
            )
            .unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].rows,
            vec![
                vec!["1/10", "10"],
                vec!["1/20", "20"],
                vec!["2/10", "20"],
                vec!["2/20", "40"],
            ]
        );
    }

    #[test]
    fn grouped_summary_over_inner_axis() {
        // Outer axis n, inner axis seed: one row per n, summarizing seeds.
        let ns = [8usize, 16];
        let seeds = [0u64, 1, 2, 3];
        let spec = SweepSpec::grid2("g", &ns, &seeds, |n, s| {
            (format!("n={n} seed={s}"), (*n, *s))
        });
        let run = SweepEngine::new(3)
            .run(&spec, |c| (c.params.0 as u64 + c.params.1) as f64)
            .unwrap();
        let agg = GroupedSummary::new(
            "per-n",
            &["n", "mean"],
            |c: &Cell<(usize, u64)>| c.params.0,
            |_c: &Cell<(usize, u64)>, r: &f64| *r,
            |n: &usize, s: &Summary| vec![n.to_string(), format!("{:.2}", s.mean)],
        );
        let mut agg = fold(&spec, run, agg);
        let tables = Aggregator::<(usize, u64), f64>::finish(&mut agg);
        assert_eq!(tables[0].rows, vec![vec!["8", "9.50"], vec!["16", "17.50"]]);
        let groups = agg.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 8);
        assert_eq!(groups[0].1.count, 4);
        assert!((groups[1].1.mean - 17.5).abs() < 1e-9);
    }
}
