//! Declarative sweep specifications: named cartesian grids of scenario
//! parameters.
//!
//! A [`SweepSpec`] is a flat, deterministically ordered list of [`Cell`]s.
//! The cartesian constructors ([`SweepSpec::grid1`] … [`SweepSpec::grid4`])
//! materialize the grid in row-major order — the first axis is the
//! outermost loop — so a spec built from the same axes always enumerates the
//! same cells in the same order, no matter how many threads later execute
//! it. Every cell carries its linear `index` (its grid coordinate collapsed
//! into enumeration order); all sweep results are keyed by that index, never
//! by completion order.

/// One point of a sweep grid: the cell's parameters plus its identity within
/// the spec.
#[derive(Clone, Debug)]
pub struct Cell<P> {
    /// Linear index of the cell in grid (row-major) order. This is the key
    /// under which the cell's result is stored and aggregated.
    pub index: usize,
    /// Human-readable label (used in progress output and error reports).
    pub label: String,
    /// The cell's parameters (seed, adversary constructor, `n`, churn rate,
    /// window size, algorithm selector, …).
    pub params: P,
}

/// A declarative multi-scenario sweep: a name plus a deterministically
/// ordered list of grid cells.
///
/// Build one with the cartesian constructors or by [`SweepSpec::push`]ing
/// cells explicitly, then execute it with
/// [`SweepEngine::run`](crate::SweepEngine::run).
#[derive(Clone, Debug)]
pub struct SweepSpec<P> {
    name: String,
    cells: Vec<Cell<P>>,
}

impl<P> SweepSpec<P> {
    /// Creates an empty spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    /// Appends one cell; its index is its position in insertion order.
    pub fn push(&mut self, label: impl Into<String>, params: P) -> &mut Self {
        self.cells.push(Cell {
            index: self.cells.len(),
            label: label.into(),
            params,
        });
        self
    }

    /// Builder-style [`SweepSpec::push`].
    pub fn cell(mut self, label: impl Into<String>, params: P) -> Self {
        self.push(label, params);
        self
    }

    /// A one-axis grid: one cell per value of `axis`, in slice order.
    /// `make` maps each axis value to the cell's `(label, params)`.
    pub fn grid1<A>(name: impl Into<String>, axis: &[A], make: impl Fn(&A) -> (String, P)) -> Self {
        let mut spec = SweepSpec::new(name);
        for a in axis {
            let (label, params) = make(a);
            spec.push(label, params);
        }
        spec
    }

    /// A two-axis cartesian grid in row-major order (`a` is the outer loop).
    pub fn grid2<A, B>(
        name: impl Into<String>,
        a_axis: &[A],
        b_axis: &[B],
        make: impl Fn(&A, &B) -> (String, P),
    ) -> Self {
        let mut spec = SweepSpec::new(name);
        for a in a_axis {
            for b in b_axis {
                let (label, params) = make(a, b);
                spec.push(label, params);
            }
        }
        spec
    }

    /// A three-axis cartesian grid in row-major order.
    pub fn grid3<A, B, C>(
        name: impl Into<String>,
        a_axis: &[A],
        b_axis: &[B],
        c_axis: &[C],
        make: impl Fn(&A, &B, &C) -> (String, P),
    ) -> Self {
        let mut spec = SweepSpec::new(name);
        for a in a_axis {
            for b in b_axis {
                for c in c_axis {
                    let (label, params) = make(a, b, c);
                    spec.push(label, params);
                }
            }
        }
        spec
    }

    /// A four-axis cartesian grid in row-major order.
    pub fn grid4<A, B, C, D>(
        name: impl Into<String>,
        a_axis: &[A],
        b_axis: &[B],
        c_axis: &[C],
        d_axis: &[D],
        make: impl Fn(&A, &B, &C, &D) -> (String, P),
    ) -> Self {
        let mut spec = SweepSpec::new(name);
        for a in a_axis {
            for b in b_axis {
                for c in c_axis {
                    for d in d_axis {
                        let (label, params) = make(a, b, c, d);
                        spec.push(label, params);
                    }
                }
            }
        }
        spec
    }

    /// The spec's name (shown in progress output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cells in grid order.
    pub fn cells(&self) -> &[Cell<P>] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the spec has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_row_major() {
        let spec = SweepSpec::grid2("g", &[1, 2], &["a", "b", "c"], |n, s| {
            (format!("{n}{s}"), (*n, *s))
        });
        let labels: Vec<&str> = spec.cells().iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["1a", "1b", "1c", "2a", "2b", "2c"]);
        assert_eq!(spec.cells()[4].index, 4);
        assert_eq!(spec.cells()[4].params, (2, "b"));
        assert_eq!(spec.len(), 6);
        assert!(!spec.is_empty());
    }

    #[test]
    fn push_assigns_indices() {
        let mut spec = SweepSpec::new("s");
        spec.push("x", 10).push("y", 20);
        assert_eq!(spec.name(), "s");
        assert_eq!(spec.cells()[1].index, 1);
        assert_eq!(spec.cells()[1].params, 20);
    }

    #[test]
    fn grid3_and_grid4_order() {
        let spec = SweepSpec::grid3("g", &[0, 1], &[0, 1], &[0, 1], |a, b, c| {
            (String::new(), 4 * a + 2 * b + c)
        });
        let params: Vec<i32> = spec.cells().iter().map(|c| c.params).collect();
        assert_eq!(params, (0..8).collect::<Vec<_>>());
        let spec4 = SweepSpec::grid4("g", &[0, 1], &[0, 1], &[0, 1], &[0, 1], |a, b, c, d| {
            (String::new(), 8 * a + 4 * b + 2 * c + d)
        });
        let params: Vec<i32> = spec4.cells().iter().map(|c| c.params).collect();
        assert_eq!(params, (0..16).collect::<Vec<_>>());
    }
}
