//! # dynnet-sweep
//!
//! Sharded multi-scenario sweep engine for the `dynnet` reproduction of
//! *"Local Distributed Algorithms in Highly Dynamic Networks"*.
//!
//! The paper's claims are validated by *sweeps* — seed ensembles, adversary
//! grids, window-size scans — and since the per-round hot path is `O(|δ|)`,
//! the remaining scaling axis is running many `Scenario`s at once. This
//! crate provides:
//!
//! * [`SweepSpec`] — a declarative cartesian grid of scenario parameters
//!   (seeds × adversaries × `n` × churn rates × window sizes × algorithms),
//!   materialized as deterministically ordered cells.
//! * [`SweepEngine`] — a work-stealing thread pool that shards the cells
//!   across workers, with per-shard progress/throughput reporting and
//!   cancel-on-error (a panicking cell aborts the sweep and names the
//!   failing grid coordinates).
//! * [`Aggregator`] — folds per-scenario results into
//!   [`dynnet_metrics::Table`]s in grid order, so sweep output is
//!   byte-identical from 1 thread to N.
//! * [`run_observed`] — per-scenario observer construction via
//!   [`dynnet_runtime::ObserverFactory`]: each worker builds a fresh
//!   observer for its scenario and hands it back keyed by grid index.
//!
//! Determinism: every cell derives its graphs and randomness from its own
//! parameters through the per-(seed, node, round) RNG, so scenarios are
//! reproducible in isolation — sharding them across threads changes only
//! wall-clock time, never results. The E1–E14 experiment harness in
//! `crates/bench` declares all of its multi-scenario experiments as specs on
//! this engine.
//!
//! ```
//! use dynnet_sweep::{Cell, CellRows, SweepEngine, SweepSpec};
//!
//! // A 2-axis grid: churn rate (outer) × seed (inner).
//! let spec = SweepSpec::grid2(
//!     "demo",
//!     &[0.0f64, 0.05],
//!     &[0u64, 1, 2],
//!     |&p, &seed| (format!("p={p} seed={seed}"), (p, seed)),
//! );
//! let tables = SweepEngine::new(8)
//!     .aggregate(
//!         &spec,
//!         |cell| {
//!             let (p, seed) = cell.params; // run a Scenario from (p, seed)…
//!             (p * 100.0) as u64 + seed
//!         },
//!         CellRows::new("demo", &["cell", "result"], |cell: &Cell<(f64, u64)>, r: u64| {
//!             vec![vec![cell.label.clone(), r.to_string()]]
//!         }),
//!     )
//!     .unwrap();
//! assert_eq!(tables[0].rows.len(), 6); // grid order, not completion order
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod checkpoint;
pub mod engine;
pub mod spec;
pub mod stream;

pub use aggregate::{fold, Aggregator, CellRows, GroupedSummary};
pub use checkpoint::{CellValue, CheckpointStore, KillSwitch, LoadSummary, StoreError};
pub use engine::{ShardStats, SweepEngine, SweepError, SweepReport, SweepRun};
pub use spec::{Cell, SweepSpec};
pub use stream::GroupedRun;

use dynnet_runtime::ObserverFactory;

/// Runs a sweep in which every cell drives one scenario against a freshly
/// constructed observer, returning the observers in grid order.
///
/// `factory` builds one observer per scenario (on the worker thread that
/// executes it); `drive` runs the cell's scenario, streaming rounds into the
/// observer. This is the "per-scenario observer construction" entry point:
/// the observer owns whatever the aggregation stage needs (churn series,
/// verification summaries, probes).
pub fn run_observed<P, O, FObs, FDrive>(
    engine: &SweepEngine,
    spec: &SweepSpec<P>,
    factory: FObs,
    drive: FDrive,
) -> Result<SweepRun<FObs::Observer>, SweepError>
where
    P: Sync,
    FObs: ObserverFactory<O>,
    FDrive: Fn(&Cell<P>, &mut FObs::Observer) + Sync,
{
    engine.run(spec, |cell| {
        let mut obs = factory.create();
        drive(cell, &mut obs);
        obs
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynnet_adversary::{Scenario, StaticAdversary};
    use dynnet_graph::{generators, NodeId};
    use dynnet_runtime::observer::ChurnStats;
    use dynnet_runtime::{Incoming, NodeAlgorithm, NodeContext};

    #[derive(Clone)]
    struct MaxFlood(u32);

    impl NodeAlgorithm for MaxFlood {
        type Msg = u32;
        type Output = u32;
        fn send(&mut self, _ctx: &mut NodeContext<'_>) -> u32 {
            self.0
        }
        fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<u32>]) {
            for (_, m) in inbox {
                self.0 = self.0.max(*m);
            }
        }
        fn output(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn run_observed_builds_one_observer_per_scenario() {
        let ns = [4usize, 6, 8];
        let spec = SweepSpec::grid1("flood", &ns, |&n| (format!("n={n}"), n));
        let run = run_observed(
            &SweepEngine::new(3),
            &spec,
            ChurnStats::<u32>::new,
            |cell, churn| {
                let n = cell.params;
                Scenario::new(n)
                    .algorithm(|v: NodeId| MaxFlood(v.0))
                    .adversary(StaticAdversary::new(generators::path(n)))
                    .seed(1)
                    .rounds(n)
                    .run(&mut [&mut *churn]);
            },
        )
        .unwrap();
        for (cell, churn) in spec.cells().iter().zip(run.results()) {
            assert_eq!(churn.series().len(), cell.params, "one run per observer");
        }
    }
}
