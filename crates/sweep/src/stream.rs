//! Streaming group aggregation: fold each sweep group as its last cell
//! lands, holding only in-flight groups in memory.
//!
//! The post-hoc [`Aggregator`](crate::Aggregator) path buffers *every* cell
//! result until the sweep finishes. On a 10k+-cell grid (hundreds of seeds
//! per point) that is a large, pointless resident set: the per-group
//! reduction (mean/max over seeds) only ever needs one group's cells at a
//! time. [`SweepEngine::run_grouped`] folds each group of consecutive
//! same-key cells the moment its last cell completes — on whichever worker
//! delivered it — so peak buffered cells is bounded by the number of groups
//! in flight, not the grid size. The fold outputs land in group order,
//! byte-identical across thread counts, and the run reports its
//! `peak_buffered` watermark so tests can pin the bound.
//!
//! Combined with a [`CheckpointStore`] the same path is crash-resumable:
//! checkpointed cells are replayed through the grouping state before the
//! engine runs the remainder, so groups that were already complete fold
//! without re-running anything.

use crate::checkpoint::{CellValue, CheckpointStore};
use crate::engine::{lock_recover, SweepEngine, SweepError, SweepReport};
use crate::spec::{Cell, SweepSpec};
use std::sync::Mutex;

/// The result of a streaming grouped sweep: one fold output per group, in
/// group (grid) order, plus the execution report and the peak number of
/// cell results that were buffered at any instant — the bound the
/// streaming design exists to keep small.
#[derive(Debug)]
pub struct GroupedRun<G> {
    /// Fold outputs, one per group, in grid order.
    pub groups: Vec<G>,
    /// The sweep execution report (cells actually run this process).
    pub report: SweepReport,
    /// High-water mark of simultaneously buffered cell results. A serial
    /// run's watermark equals the largest group; parallel runs may overlap
    /// a few groups but never approach the full grid.
    pub peak_buffered: usize,
}

/// One group of consecutive same-key cells: its key and cell index range.
struct GroupSpan<K> {
    key: K,
    start: usize,
    end: usize, // exclusive
}

/// Shared grouping state: per-group slot buffers that exist only while the
/// group is in flight.
struct GroupState<R, G> {
    /// Per-group buffers; `None` once folded (or not yet started — see
    /// `remaining`).
    buffers: Vec<Option<Vec<Option<R>>>>,
    /// Cells still missing per group; 0 means folded.
    remaining: Vec<usize>,
    outputs: Vec<Option<G>>,
    buffered_now: usize,
    peak_buffered: usize,
}

fn group_spans<P, K: PartialEq>(
    spec: &SweepSpec<P>,
    group_of: impl Fn(&Cell<P>) -> K,
) -> Vec<GroupSpan<K>> {
    let mut spans: Vec<GroupSpan<K>> = Vec::new();
    for cell in spec.cells() {
        let key = group_of(cell);
        match spans.last_mut() {
            Some(span) if span.key == key => span.end = cell.index + 1,
            _ => spans.push(GroupSpan {
                key,
                start: cell.index,
                end: cell.index + 1,
            }),
        }
    }
    spans
}

impl SweepEngine {
    /// Runs `spec`, folding each run of consecutive cells that share a
    /// group key (per `group_of`) through `fold_group` as soon as the
    /// group's last cell finishes. Only in-flight groups are buffered, so
    /// memory stays bounded by group size × concurrency instead of grid
    /// size.
    ///
    /// `fold_group` receives the group key, the group's cells, and the
    /// results in grid order; its outputs come back in grid order
    /// regardless of completion order or thread count.
    ///
    /// With `store = Some(..)`, finished cells are persisted before they
    /// count (and previously checkpointed cells are loaded, verified, and
    /// fed through the same grouping state without re-running), making the
    /// whole grouped sweep crash-resumable.
    pub fn run_grouped<P, R, K, G, F, FK, FG>(
        &self,
        spec: &SweepSpec<P>,
        store: Option<&CheckpointStore>,
        run_cell: F,
        group_of: FK,
        fold_group: FG,
    ) -> Result<GroupedRun<G>, SweepError>
    where
        P: Sync,
        R: Send + CellValue,
        K: PartialEq + Sync,
        G: Send,
        F: Fn(&Cell<P>) -> R + Sync,
        FK: Fn(&Cell<P>) -> K + Sync,
        FG: Fn(&K, &[Cell<P>], Vec<R>) -> G + Sync,
    {
        let spans = group_spans(spec, &group_of);
        // Map each cell index to its group index.
        let mut group_of_cell = vec![0usize; spec.len()];
        for (gi, span) in spans.iter().enumerate() {
            for slot in &mut group_of_cell[span.start..span.end] {
                *slot = gi;
            }
        }
        let state = Mutex::new(GroupState {
            buffers: spans.iter().map(|_| None).collect(),
            remaining: spans.iter().map(|s| s.end - s.start).collect(),
            outputs: spans.iter().map(|_| None).collect(),
            buffered_now: 0,
            peak_buffered: 0,
        });

        // Delivers one cell result into its group buffer; when the group
        // completes, takes the buffer (releasing the lock around the
        // user fold) and stores the fold output in group order.
        let deliver = |cell: &Cell<P>, result: R| -> Result<(), String> {
            let gi = group_of_cell[cell.index];
            let span = &spans[gi];
            let completed = {
                let mut st = lock_recover(&state);
                let buf = st.buffers[gi]
                    .get_or_insert_with(|| (span.start..span.end).map(|_| None).collect());
                let slot = &mut buf[cell.index - span.start];
                if slot.is_some() {
                    return Err(format!("duplicate result for cell {}", cell.index));
                }
                *slot = Some(result);
                st.buffered_now += 1;
                st.peak_buffered = st.peak_buffered.max(st.buffered_now);
                st.remaining[gi] -= 1;
                if st.remaining[gi] == 0 {
                    st.buffers[gi].take()
                } else {
                    None
                }
            };
            if let Some(buf) = completed {
                let mut results = Vec::with_capacity(span.end - span.start);
                for (offset, slot) in buf.into_iter().enumerate() {
                    results.push(slot.ok_or_else(|| {
                        format!("group {gi} missing cell {}", span.start + offset)
                    })?);
                }
                let output = fold_group(&span.key, &spec.cells()[span.start..span.end], results);
                let mut st = lock_recover(&state);
                st.buffered_now -= span.end - span.start;
                st.outputs[gi] = Some(output);
            }
            Ok(())
        };

        // Replay checkpointed cells through the same delivery path, then
        // run only the holes.
        let pending: Vec<usize> = match store {
            Some(store) => {
                let (loaded, _summary) = store.load::<R, P>(spec).map_err(|e| SweepError {
                    sweep: spec.name().to_string(),
                    cell_index: usize::MAX,
                    cell_label: "<store>".to_string(),
                    message: e.to_string(),
                })?;
                let mut pending = Vec::new();
                for (index, slot) in loaded.into_iter().enumerate() {
                    match slot {
                        Some(result) => {
                            deliver(&spec.cells()[index], result).map_err(|message| SweepError {
                                sweep: spec.name().to_string(),
                                cell_index: index,
                                cell_label: spec.cells()[index].label.clone(),
                                message,
                            })?
                        }
                        None => pending.push(index),
                    }
                }
                pending
            }
            None => (0..spec.len()).collect(),
        };

        let done_offset = spec.len() - pending.len();
        let report = self.drive(
            spec,
            &pending,
            done_offset,
            &run_cell,
            &|cell: &Cell<P>, result: R| {
                if let Some(store) = store {
                    store.persist(cell, &result).map_err(|e| e.to_string())?;
                }
                deliver(cell, result)
            },
        )?;

        let state = state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut groups = Vec::with_capacity(spans.len());
        for (gi, output) in state.outputs.into_iter().enumerate() {
            match output {
                Some(g) => groups.push(g),
                None => {
                    return Err(SweepError {
                        sweep: spec.name().to_string(),
                        cell_index: spans[gi].start,
                        cell_label: spec.cells()[spans[gi].start].label.clone(),
                        message: format!("group {gi} never completed"),
                    })
                }
            }
        }
        Ok(GroupedRun {
            groups,
            report,
            peak_buffered: state.peak_buffered,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::KillSwitch;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dynnet-stream-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// 4 groups × 5 seeds; each cell returns `group * 100 + seed`.
    fn seeded_spec() -> SweepSpec<(usize, usize)> {
        SweepSpec::grid2(
            "seeds",
            &[0usize, 1, 2, 3],
            &[0usize, 1, 2, 3, 4],
            |&g, &s| (format!("g={g} s={s}"), (g, s)),
        )
    }

    fn fold_sum(key: &usize, cells: &[Cell<(usize, usize)>], results: Vec<u64>) -> (usize, u64) {
        assert_eq!(cells.len(), results.len());
        (*key, results.iter().sum())
    }

    #[test]
    fn grouped_outputs_are_grid_ordered_and_bounded() {
        let spec = seeded_spec();
        let expected: Vec<(usize, u64)> = (0..4)
            .map(|g| (g, (0..5).map(|s| (g * 100 + s) as u64).sum()))
            .collect();
        for threads in [1usize, 4] {
            let run = SweepEngine::new(threads)
                .run_grouped(
                    &spec,
                    None,
                    |c| (c.params.0 * 100 + c.params.1) as u64,
                    |c| c.params.0,
                    fold_sum,
                )
                .unwrap();
            assert_eq!(run.groups, expected, "threads={threads}");
            assert!(
                run.peak_buffered < spec.len(),
                "threads={threads}: buffered the whole grid"
            );
            if threads == 1 {
                // Serial: at most one group in flight.
                assert_eq!(run.peak_buffered, 5);
            }
        }
    }

    #[test]
    fn grouped_resume_replays_checkpointed_cells() {
        let spec = seeded_spec();
        let dir = tmp_dir("resume");
        let engine = SweepEngine::new(1);
        let store = CheckpointStore::create(&dir)
            .unwrap()
            .with_kill_switch(KillSwitch::after(7));
        let err = engine
            .run_grouped(
                &spec,
                Some(&store),
                |c| (c.params.0 * 100 + c.params.1) as u64,
                |c| c.params.0,
                fold_sum,
            )
            .expect_err("kill switch must fire");
        assert!(err.message.contains("kill switch"));

        let store = CheckpointStore::resume(&dir).unwrap();
        let run = engine
            .run_grouped(
                &spec,
                Some(&store),
                |c| (c.params.0 * 100 + c.params.1) as u64,
                |c| c.params.0,
                fold_sum,
            )
            .unwrap();
        let expected: Vec<(usize, u64)> = (0..4)
            .map(|g| (g, (0..5).map(|s| (g * 100 + s) as u64).sum()))
            .collect();
        assert_eq!(run.groups, expected);
        // 7 cells were already durable; only 13 ran.
        assert_eq!(run.report.cells, 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
