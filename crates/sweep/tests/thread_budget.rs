//! Sweep × per-round-parallelism co-scheduling: a sharded sweep claims its
//! worker count from the shared rayon thread budget, so cells that enable
//! `SimConfig::parallel` shrink their inner fan-out instead of multiplying
//! threads per cell (the E14 oversubscription bug).
//!
//! This file is its own test binary (hence its own process) on purpose: the
//! pool counters asserted here are process-global, and the single `#[test]`
//! keeps concurrent tests from polluting the peak-concurrency high-water
//! mark.

use dynnet_adversary::{FlipChurnAdversary, Scenario};
use dynnet_algorithms::mis::DMis;
use dynnet_core::MisOutput;
use dynnet_graph::{generators, NodeId};
use dynnet_runtime::observer::ChurnStats;
use dynnet_runtime::rng::experiment_rng;
use dynnet_sweep::{SweepEngine, SweepSpec};

/// One parallel-enabled scenario per cell: n nodes of flip churn under DMis,
/// parallel threshold 0 so every round exercises the parallel path.
fn run_cell(seed: u64) -> Vec<usize> {
    let n = 600;
    let footprint = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(seed, "budget"));
    let mut churn = ChurnStats::new();
    Scenario::new(n)
        .algorithm(|v: NodeId| DMis::new(v, MisOutput::Undecided))
        .adversary(FlipChurnAdversary::new(&footprint, 0.02, seed))
        .seed(seed)
        .parallel(true)
        .parallel_threshold(0)
        .rounds(12)
        .run(&mut [&mut churn]);
    churn.series().to_vec()
}

#[test]
fn sweep_of_parallel_cells_stays_within_thread_budget() {
    let budget = rayon::max_threads();
    let seeds: Vec<u64> = (0..8).collect();
    let spec = SweepSpec::grid1("budget", &seeds, |&s| (format!("seed={s}"), s));

    // Reference: serial engine (no claim), cells still parallel inside.
    let serial = SweepEngine::new(1)
        .run(&spec, |c| run_cell(c.params))
        .expect("serial sweep");

    // Sharded engine: 2 workers claim 2 of the budget, so each cell's inner
    // parallel calls fan out to at most budget/2 threads.
    let sharded = SweepEngine::new(2)
        .run(&spec, |c| run_cell(c.params))
        .expect("sharded sweep");

    // Budget-constrained inner parallelism changes wall-clock only, never
    // results: per-(seed, node, round) randomness pins the execution.
    assert_eq!(serial.results(), sharded.results());

    let stats = rayon::pool_stats();
    // The pool never grows past the budget: all workers were spawned at
    // pool init, none per round or per cell.
    assert!(
        stats.workers_spawned <= budget.saturating_sub(1),
        "pool spawned {} workers for a budget of {budget}",
        stats.workers_spawned
    );
    // Peak concurrency (pool workers + calling threads executing parallel
    // work, inline calls included) stays within the budget: the engine's
    // claim throttles the cells' inner fan-out. On a single-core budget the
    // 2 sweep workers themselves exceed it by construction, so the strict
    // bound only holds for budgets that fit the engine.
    if budget >= 2 {
        assert!(
            stats.peak_active <= budget,
            "peak parallel concurrency {} exceeded the thread budget {budget}",
            stats.peak_active
        );
    }

    // An engine claiming the entire budget degrades inner parallelism to
    // inline sequential execution: no task reaches the pool at all.
    let wide_seeds: Vec<u64> = (0..budget.max(2) as u64).collect();
    let wide_spec = SweepSpec::grid1("budget-wide", &wide_seeds, |&s| (format!("seed={s}"), s));
    let pooled_before = rayon::pool_stats().tasks_pooled;
    let wide = SweepEngine::new(budget.max(2))
        .run(&wide_spec, |c| run_cell(c.params))
        .expect("full-budget sweep");
    let overlap = seeds.len().min(wide_seeds.len());
    assert_eq!(wide.results()[..overlap], serial.results()[..overlap]);
    assert_eq!(
        rayon::pool_stats().tasks_pooled,
        pooled_before,
        "a full-budget sweep must run cells' inner parallelism inline"
    );
}
