//! End-to-end sweep-engine guarantees:
//!
//! * **Determinism** — a (adversary × seed) grid of real scenarios produces
//!   byte-identical `Table::to_csv()` output with 1 worker thread and with 8
//!   worker threads (results are keyed by grid coordinates, and every cell
//!   derives its randomness from its own parameters).
//! * **Cancel-on-panic** — a panicking cell aborts the sweep and the engine
//!   reports the failing grid cell's index and label.

use dynnet_adversary::{
    FlipChurnAdversary, MarkovChurnAdversary, OutputAdversary, Scenario, StaticAdversary,
};
use dynnet_algorithms::coloring::DColor;
use dynnet_core::{ColorOutput, HasBottom};
use dynnet_graph::{generators, NodeId};
use dynnet_metrics::Table;
use dynnet_runtime::observer::ChurnStats;
use dynnet_sweep::{Cell, CellRows, SweepEngine, SweepSpec};

/// The adversary axis of the determinism grid.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Adv {
    Static,
    Flip,
    Markov,
}

const ADVERSARIES: &[Adv] = &[Adv::Static, Adv::Flip, Adv::Markov];
const SEEDS: &[u64] = &[0, 1, 2, 3, 4];

fn spec() -> SweepSpec<(Adv, u64)> {
    SweepSpec::grid2("determinism", ADVERSARIES, SEEDS, |&a, &s| {
        (format!("{a:?} seed={s}"), (a, s))
    })
}

/// Runs the full grid on `threads` workers and renders the one result table.
/// With `parallel_rounds` every cell also runs its rounds on the parallel
/// executor (threshold 0), stacking sweep-level and round-level parallelism.
fn run_grid_with(threads: usize, parallel_rounds: bool) -> Table {
    let n = 48;
    let rounds = 40;
    let mut tables = SweepEngine::new(threads)
        .aggregate(
            &spec(),
            |cell| {
                let (adv, seed) = cell.params;
                let footprint = generators::erdos_renyi_avg_degree(
                    n,
                    6.0,
                    &mut dynnet_runtime::rng::experiment_rng(seed, "sweep-det"),
                );
                let mut churn = ChurnStats::new();
                let adversary: Box<dyn OutputAdversary<ColorOutput>> = match adv {
                    Adv::Static => Box::new(StaticAdversary::new(footprint)),
                    Adv::Flip => Box::new(FlipChurnAdversary::new(&footprint, 0.05, 7 + seed)),
                    Adv::Markov => Box::new(MarkovChurnAdversary::new(
                        &footprint,
                        0.1,
                        0.1,
                        false,
                        9 + seed,
                    )),
                };
                let runner = Scenario::new(n)
                    .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
                    .adversary(adversary)
                    .seed(seed)
                    .parallel(parallel_rounds)
                    .parallel_threshold(0)
                    .rounds(rounds)
                    .run(&mut [&mut churn]);
                let decided = runner
                    .outputs()
                    .iter()
                    .filter(|o| o.map(|c| c.is_decided()).unwrap_or(false))
                    .count();
                (decided, churn.total_from(0))
            },
            CellRows::new(
                "sweep determinism",
                &["cell", "decided", "output changes"],
                |cell: &Cell<(Adv, u64)>, (decided, changes): (usize, usize)| {
                    vec![vec![
                        cell.label.clone(),
                        decided.to_string(),
                        changes.to_string(),
                    ]]
                },
            ),
        )
        .expect("sweep must succeed");
    assert_eq!(tables.len(), 1);
    tables.pop().unwrap()
}

fn run_grid(threads: usize) -> Table {
    run_grid_with(threads, false)
}

#[test]
fn one_thread_and_eight_threads_produce_byte_identical_csv() {
    let reference = run_grid(1);
    assert_eq!(
        reference.rows.len(),
        ADVERSARIES.len() * SEEDS.len(),
        "one row per grid cell"
    );
    // Scenarios actually did something (not all-zero columns).
    assert!(reference.rows.iter().any(|r| r[1] != "0"));
    let csv1 = reference.to_csv();
    for threads in [2, 8] {
        let csv_n = run_grid(threads).to_csv();
        assert_eq!(
            csv1, csv_n,
            "CSV output must be byte-identical with {threads} threads"
        );
    }
}

/// Work-stealing chunk granularity is scheduling-only: the same sweep, with
/// parallel rounds inside every cell, renders a byte-identical CSV whether
/// the round kernel splits work into 1, 2, or 4 chunks per claimed thread.
/// (On a 1-thread budget the parallel path degrades to sequential and the
/// factors are trivially identical; CI's `DYNNET_RAYON_THREADS=2` pass
/// exercises the real chunked plans.)
#[test]
fn chunk_granularity_produces_byte_identical_csv() {
    let reference = run_grid_with(2, true).to_csv();
    for factor in [1usize, 2, 4] {
        rayon::set_chunk_factor(factor);
        let csv = run_grid_with(2, true).to_csv();
        assert_eq!(
            reference, csv,
            "CSV output must be byte-identical at chunk factor {factor}"
        );
    }
    rayon::set_chunk_factor(rayon::DEFAULT_CHUNK_FACTOR);
}

#[test]
fn cancel_on_panic_surfaces_the_failing_grid_cell() {
    let err = match SweepEngine::new(8).run(&spec(), |cell| {
        let (adv, seed) = cell.params;
        if adv == Adv::Markov && seed == 2 {
            panic!("injected failure in markov/2");
        }
        seed
    }) {
        Err(e) => e,
        Ok(_) => panic!("the sweep must fail"),
    };
    // Grid is adversary-major: Markov is the third adversary block.
    assert_eq!(err.cell_index, 2 * SEEDS.len() + 2);
    assert_eq!(err.cell_label, "Markov seed=2");
    assert_eq!(err.sweep, "determinism");
    assert!(err.message.contains("injected failure"));
    assert!(err.to_string().contains("Markov seed=2"));
}
