//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors a minimal, dependency-free
//! implementation of exactly the `rand` surface it uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] (`choose`, `shuffle`). Swap the `[patch]`-style
//! path dependency for the real crate when a registry is available — no call
//! site needs to change.
//!
//! Distribution quality notes: integer ranges use the widening-multiply
//! (Lemire) method, floats use the standard 53-bit mantissa-fill in `[0, 1)`.
//! Sequences are NOT bit-compatible with the real `rand` crate, but are
//! deterministic and platform-independent, which is what the workspace's
//! reproducibility guarantees require.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range
/// (the `Standard` distribution of the real crate).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that support uniform sampling from half-open / inclusive ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as u128).wrapping_add(draw as u128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty range in gen_range");
                if low as u128 == 0 && high as u128 == u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (high as u128).wrapping_sub(low as u128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as u128).wrapping_add(draw as u128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in gen_range");
                let span = (high as i128 - low as i128) as u64;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (low as i128 + draw as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let span = (high as i128 - low as i128) as u64 as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range in gen_range");
        let unit = f64::sample_standard(rng);
        low + (high - low) * unit
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        low + (high - low) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(rng, low, high)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// Random operations on slices (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// `choose` / `choose_multiple` / `shuffle` on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Returns `amount` distinct elements sampled without replacement
        /// (all elements if `amount >= len`), in random order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index permutation.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the high bits (used by range sampling) vary.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..2000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut r = Counter(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_slice() {
        let mut r = Counter(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let c = *v.choose(&mut r).unwrap();
        assert!(c < 50);
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn works_through_unsized_generic_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> (u64, usize, bool) {
            (rng.gen(), rng.gen_range(0..4), rng.gen_bool(0.5))
        }
        let mut r = Counter(11);
        let (_, k, _) = draw(&mut r);
        assert!(k < 4);
    }
}
