//! Offline stand-in for the `criterion` benchmark harness (0.5 API subset).
//!
//! Provides `Criterion`, `BenchmarkGroup` (`sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `bench_with_input`, `finish`),
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurements are simple
//! wall-clock statistics (mean / min / max over the configured sample count)
//! printed to stdout — no statistical regression analysis, no HTML reports.
//! Swap the path dependency for the real crate when a registry is available.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let warm_up = self.warm_up_time;
        let measurement = self.measurement_time;
        run_benchmark(id, sample_size, warm_up, measurement, f);
        self
    }
}

/// A group of related benchmarks with shared timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op marker).
    pub fn finish(self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed cost to pick an iteration count per sample.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = warm_start
        .elapsed()
        .checked_div(warm_iters.max(1) as u32)
        .unwrap_or_default();
    let budget_per_sample = measurement
        .checked_div(sample_size.max(1) as u32)
        .unwrap_or_default();
    let iters: u64 = if per_iter.is_zero() {
        1
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.checked_div(iters as u32).unwrap_or_default());
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total
        .checked_div(samples.len().max(1) as u32)
        .unwrap_or_default();
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples x {} iters)",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
        samples.len(),
        iters,
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim2");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(2));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
