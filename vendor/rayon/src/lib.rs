//! Offline stand-in for the `rayon` parallel-iterator API subset used by the
//! dynnet workspace (`par_iter_mut().enumerate().map(..).collect()` and
//! `par_iter_mut().enumerate().for_each(..)` over slices/vectors).
//!
//! Implements real data parallelism with `std::thread::scope`: the slice is
//! split into one contiguous chunk per available core and each chunk is
//! processed on its own scoped thread. Results of `map` are concatenated in
//! index order, so the observable behavior (and, for the deterministic
//! per-item closures the simulator uses, the exact output) matches rayon.
//! Swap the path dependency for the real crate when a registry is available.

use std::num::NonZeroUsize;

/// Number of worker threads to fan out to (1 disables threading). The
/// `DYNNET_RAYON_THREADS` environment variable overrides the detected core
/// count (used by tests to exercise the threaded path on single-core hosts).
fn num_threads() -> usize {
    if let Ok(v) = std::env::var("DYNNET_RAYON_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(offset, chunk)` over contiguous chunks of `slice` in parallel.
fn for_each_chunk<T, F>(slice: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = num_threads();
    let len = slice.len();
    if threads <= 1 || len < 2 {
        f(0, slice);
        return;
    }
    let chunk_size = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut offset = 0;
        for chunk in slice.chunks_mut(chunk_size) {
            let start = offset;
            offset += chunk.len();
            let f = &f;
            scope.spawn(move || f(start, chunk));
        }
    });
}

/// Maps `f(offset + i, item)` over the slice in parallel, preserving order.
fn map_chunks<T, R, F>(slice: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let threads = num_threads();
    let len = slice.len();
    if threads <= 1 || len < 2 {
        return slice
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let chunk_size = len.div_ceil(threads);
    let mut pieces: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut offset = 0;
        for chunk in slice.chunks_mut(chunk_size) {
            let start = offset;
            offset += chunk.len();
            let f = &f;
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(i, item)| f(start + i, item))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            pieces.push(h.join().expect("worker thread panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for piece in pieces {
        out.extend(piece);
    }
    out
}

/// The rayon-compatible entry points.
pub mod prelude {
    use super::{for_each_chunk, map_chunks};

    /// `par_iter_mut` on mutable slice-like collections.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by the parallel iterator.
        type Item: 'data;
        /// The parallel iterator type.
        type Iter;
        /// Starts a parallel iteration over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = ParIterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = ParIterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    /// Parallel iterator over `&mut [T]`.
    pub struct ParIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParIterMut<'a, T> {
        /// Pairs every item with its index.
        pub fn enumerate(self) -> ParEnumerate<'a, T> {
            ParEnumerate { slice: self.slice }
        }

        /// Applies `f` to every item in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            for_each_chunk(self.slice, |_, chunk| {
                for item in chunk.iter_mut() {
                    f(item);
                }
            });
        }

        /// Maps every item in parallel, preserving order.
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&mut T) -> R + Sync,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// Enumerated parallel iterator.
    pub struct ParEnumerate<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParEnumerate<'a, T> {
        /// Applies `f((index, item))` to every item in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut T)) + Sync,
        {
            for_each_chunk(self.slice, |offset, chunk| {
                for (i, item) in chunk.iter_mut().enumerate() {
                    f((offset + i, item));
                }
            });
        }

        /// Maps every `(index, item)` in parallel, preserving order.
        pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
        where
            R: Send,
            F: Fn((usize, &mut T)) -> R + Sync,
        {
            ParEnumerateMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// Lazy parallel map (unenumerated).
    pub struct ParMap<'a, T, F> {
        slice: &'a mut [T],
        f: F,
    }

    impl<'a, T, R, F> ParMap<'a, T, F>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        /// Runs the map and collects the results in index order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            map_chunks(self.slice, |_, item| f(item))
                .into_iter()
                .collect()
        }
    }

    /// Lazy parallel map over `(index, item)` pairs.
    pub struct ParEnumerateMap<'a, T, F> {
        slice: &'a mut [T],
        f: F,
    }

    impl<'a, T, R, F> ParEnumerateMap<'a, T, F>
    where
        T: Send,
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        /// Runs the map and collects the results in index order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            map_chunks(self.slice, |i, item| f((i, item)))
                .into_iter()
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let mut v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| *x * 2 + i as u64)
            .collect();
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, i as u64 * 3);
        }
    }

    #[test]
    fn for_each_mutates_every_item() {
        let mut v: Vec<usize> = vec![0; 5000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn unenumerated_variants() {
        let mut v: Vec<i32> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        let doubled: Vec<i32> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(doubled[0], 2);
        assert_eq!(doubled[99], 200);
    }

    #[test]
    fn threaded_path_matches_sequential_results() {
        // Force the scoped-thread path even on single-core hosts.
        std::env::set_var("DYNNET_RAYON_THREADS", "4");
        let mut v: Vec<u64> = (0..10_001).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| *x + i as u64)
            .collect();
        std::env::remove_var("DYNNET_RAYON_THREADS");
        assert_eq!(out.len(), 10_001);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, 2 * i as u64, "order must be preserved across chunks");
        }
    }

    #[test]
    fn tiny_and_empty_slices() {
        let mut v: Vec<u8> = vec![];
        let out: Vec<u8> = v.par_iter_mut().enumerate().map(|(_, x)| *x).collect();
        assert!(out.is_empty());
        let mut one = vec![41];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one, vec![42]);
    }
}
