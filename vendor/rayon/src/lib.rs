//! Offline stand-in for the `rayon` parallel-iterator API subset used by the
//! dynnet workspace (`par_iter_mut().enumerate().map(..).collect()` and
//! `par_iter_mut().enumerate().for_each(..)` over slices/vectors, plus the
//! [`par_zip_shards`] extension the simulator's fused receive+publish pass
//! uses).
//!
//! Unlike the original shim — which spawned fresh `std::thread::scope`
//! threads on *every* call, two spawns per simulated round — this version
//! implements real data parallelism on a **persistent shared worker pool**:
//!
//! * The pool is created lazily on the first parallel call and holds
//!   `budget - 1` parked workers (the calling thread is the budget's last
//!   member and always participates). No thread is ever spawned after pool
//!   initialization; see [`pool_stats`].
//! * Each call splits its slice into roughly `width × chunk_factor`
//!   contiguous chunks (default factor 4, override via
//!   `DYNNET_RAYON_CHUNK_FACTOR`; a 64-item floor keeps tiny inputs from
//!   shattering into ticket-overhead-dominated fragments) and publishes the
//!   chunk set as a single task; parked workers claim chunks by atomic
//!   ticket, so a thread that finishes its chunk early steals the next one
//!   instead of idling behind a straggler. Results of `map` land directly in
//!   their index-ordered output slots — the observable behavior (and, for
//!   the deterministic per-item closures the simulator uses, the exact
//!   output) matches rayon and the sequential path *regardless of the chunk
//!   factor*, because chunks are contiguous and ascending.
//! * The **thread budget** is resolved exactly once per process: the
//!   `DYNNET_RAYON_THREADS` environment variable if set, otherwise the
//!   detected core count ([`max_threads`]). Changing the variable mid-run
//!   has no effect — pool size and call widths stay fixed.
//! * Coarser-grained schedulers (the `dynnet-sweep` engine) coordinate with
//!   per-round parallelism through the **budget claim API**
//!   ([`claim_threads`]): while a claim for `c` threads is outstanding,
//!   every parallel call fans out to at most `max(1, budget / c)` threads,
//!   so `claimed × per-call width ≤ budget` and a sweep of parallel-enabled
//!   cells can never oversubscribe the machine. A claim covering the whole
//!   budget degrades inner parallelism to inline sequential execution (the
//!   pool is not even woken).
//!
//! Swap the path dependency for the real crate when a registry is available
//! (the budget-claim API then maps onto a configured global thread pool).

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Thread budget
// ---------------------------------------------------------------------------

/// The process-wide thread budget, resolved exactly once: the
/// `DYNNET_RAYON_THREADS` environment variable if it parses to a positive
/// integer, otherwise the detected core count. Later env changes are
/// deliberately ignored (regression-tested): the pool is sized from this
/// value and a mid-run change must not alter behavior.
fn budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        if let Ok(v) = std::env::var("DYNNET_RAYON_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The resolved thread budget: the maximum number of threads (including the
/// calling thread) any parallel call may fan out to, and the bound the
/// worker pool is sized from. Constant for the lifetime of the process.
pub fn max_threads() -> usize {
    budget()
}

/// Threads of the budget currently reserved by outstanding [`BudgetClaim`]s.
static CLAIMED: AtomicUsize = AtomicUsize::new(0);

/// RAII reservation of part of the thread budget, returned by
/// [`claim_threads`]. While alive, every parallel call's fan-out width is
/// reduced so that `claimed × width ≤ budget`; dropping the claim restores
/// the previous width.
#[must_use = "the claim reserves budget only while it is alive"]
pub struct BudgetClaim {
    n: usize,
}

impl Drop for BudgetClaim {
    fn drop(&mut self) {
        CLAIMED.fetch_sub(self.n, Ordering::SeqCst);
    }
}

/// Reserves `n` threads of the budget for an external scheduler (e.g. the
/// sweep engine's worker shards). While the returned [`BudgetClaim`] is
/// alive, every parallel call — from any thread — fans out to at most
/// `max(1, budget / claimed)` threads, so the claimant's `n` threads and the
/// per-call parallelism they trigger jointly stay within [`max_threads`].
/// Claims nest (a second claim further shrinks call widths); claiming the
/// whole budget makes all parallel calls run inline on their caller.
pub fn claim_threads(n: usize) -> BudgetClaim {
    let n = n.max(1);
    CLAIMED.fetch_add(n, Ordering::SeqCst);
    BudgetClaim { n }
}

/// Threads currently reserved via [`claim_threads`] (testing/inspection).
pub fn claimed_threads() -> usize {
    CLAIMED.load(Ordering::SeqCst)
}

/// Fan-out width for a parallel call issued now: the full budget when no
/// claim is outstanding, otherwise `max(1, budget / claimed)` so that
/// `claimed × width ≤ budget`.
fn call_width() -> usize {
    let b = budget();
    match CLAIMED.load(Ordering::SeqCst) {
        0 => b,
        c => (b / c).max(1),
    }
}

/// The fan-out width a parallel call issued right now would use:
/// [`max_threads`] when no [`claim_threads`] claim is outstanding, otherwise
/// `max(1, budget / claimed)`. Schedulers use this to decide whether
/// parallel setup can be amortized at all (width 1 means every parallel call
/// degrades to inline sequential execution).
pub fn effective_width() -> usize {
    call_width()
}

/// Work-stealing granularity: each parallel call is split into about
/// `width × chunk_factor` chunks. `0` means "not yet resolved".
static CHUNK_FACTOR: AtomicUsize = AtomicUsize::new(0);

/// Default chunks-per-thread ratio. Finer than 1 chunk/thread so a thread
/// that drew a cheap chunk steals the next instead of idling behind a
/// straggler; coarse enough that the atomic ticket stays negligible.
/// Default number of chunks per claimed thread when neither the
/// `DYNNET_RAYON_CHUNK_FACTOR` variable nor `set_chunk_factor` overrides it.
pub const DEFAULT_CHUNK_FACTOR: usize = 4;

/// Chunks-per-participating-thread ratio for parallel calls, resolved once
/// from `DYNNET_RAYON_CHUNK_FACTOR` (default 4). Chunk granularity never
/// affects results — chunks are contiguous and ascending, so outputs and
/// shard-result concatenation are byte-identical at any factor (regression:
/// the workspace's chunk-granularity determinism tests).
pub fn chunk_factor() -> usize {
    match CHUNK_FACTOR.load(Ordering::SeqCst) {
        0 => {
            let f = std::env::var("DYNNET_RAYON_CHUNK_FACTOR")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&f| f >= 1)
                .unwrap_or(DEFAULT_CHUNK_FACTOR);
            // Racing resolvers compute the same value (the env var is read,
            // not written); the CAS just keeps the slot write-once vs `set_`.
            let _ = CHUNK_FACTOR.compare_exchange(0, f, Ordering::SeqCst, Ordering::SeqCst);
            CHUNK_FACTOR.load(Ordering::SeqCst)
        }
        f => f,
    }
}

/// Overrides the chunk factor (testing API — the determinism tests sweep
/// factors 1/2/4 in-process). Values are clamped to ≥ 1.
pub fn set_chunk_factor(f: usize) {
    CHUNK_FACTOR.store(f.max(1), Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Pool instrumentation
// ---------------------------------------------------------------------------

static WORKERS_SPAWNED: AtomicUsize = AtomicUsize::new(0);
static TASKS_POOLED: AtomicU64 = AtomicU64::new(0);
static CALLS_INLINE: AtomicU64 = AtomicU64::new(0);
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Counters describing the pool's lifetime behavior, for tests and benches
/// (e.g. "a parallel round performs zero thread spawns" and "a sweep of
/// parallel-enabled cells stays within the thread budget").
#[derive(Clone, Copy, Debug)]
pub struct PoolStats {
    /// The resolved thread budget ([`max_threads`]).
    pub budget: usize,
    /// Worker threads spawned since process start. At most `budget - 1`,
    /// all at pool initialization — parallel calls never spawn.
    pub workers_spawned: usize,
    /// Parallel calls dispatched through the pool (width > 1).
    pub tasks_pooled: u64,
    /// Parallel calls executed inline on the caller (width 1, tiny inputs,
    /// or the budget fully claimed).
    pub calls_inline: u64,
    /// Peak number of threads simultaneously executing parallel work
    /// (pool workers and calling threads, inline calls included).
    pub peak_active: usize,
}

/// A snapshot of the pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        budget: budget(),
        workers_spawned: WORKERS_SPAWNED.load(Ordering::SeqCst),
        tasks_pooled: TASKS_POOLED.load(Ordering::SeqCst),
        calls_inline: CALLS_INLINE.load(Ordering::SeqCst),
        peak_active: PEAK_ACTIVE.load(Ordering::SeqCst),
    }
}

/// Marks the calling thread active for the duration of `f`, maintaining the
/// peak-concurrency high-water mark. Drop-guarded so a panicking inline
/// call (which propagates to the caller) still releases its active slot.
fn tracked<R>(f: impl FnOnce() -> R) -> R {
    struct Active;
    impl Drop for Active {
        fn drop(&mut self) {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let now = ACTIVE.fetch_add(1, Ordering::SeqCst) + 1;
    PEAK_ACTIVE.fetch_max(now, Ordering::SeqCst);
    let _guard = Active;
    f()
}

// ---------------------------------------------------------------------------
// The shared worker pool
// ---------------------------------------------------------------------------

/// One in-flight parallel call: a fixed set of chunks claimed by atomic
/// ticket. Lives on the submitting thread's stack; the queue holds a raw
/// pointer that is guaranteed valid while the task is queued (the submitter
/// dequeues it before returning) and while any helper is registered (the
/// submitter waits for `helpers == 0`).
struct Task {
    /// Type-erased chunk executor (`run(i)` processes chunk `i`). The
    /// `'static` in the pointee type is a lie told to the queue; the
    /// submitter keeps the closure alive until the task fully drains.
    run: *const (dyn Fn(usize) + Sync),
    /// Next chunk ticket.
    next: AtomicUsize,
    /// Total number of chunks.
    chunks: usize,
    /// Chunks not yet finished executing.
    unfinished: AtomicUsize,
    /// Pool workers currently holding a reference to this task.
    helpers: AtomicUsize,
    /// Set when any chunk panicked; the submitter re-raises.
    panicked: AtomicBool,
    /// Completion latch: the submitter sleeps here until `unfinished == 0`
    /// and `helpers == 0`.
    done: Mutex<()>,
    done_cv: Condvar,
}

impl Task {
    /// Claims and executes chunks until none are left. Returns `true` if
    /// this thread executed at least one chunk.
    fn execute_chunks(&self) -> bool {
        let mut counted = false;
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.chunks {
                break;
            }
            if !counted {
                counted = true;
                let now = ACTIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK_ACTIVE.fetch_max(now, Ordering::SeqCst);
            }
            // SAFETY: `run` points into the submitter's `run_on_pool` frame,
            // which cannot return while `unfinished > 0` — and every chunk
            // executed here was claimed via `next.fetch_add` before
            // `unfinished` could reach zero.
            let run = unsafe { &*self.run };
            if catch_unwind(AssertUnwindSafe(|| run(i))).is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            if self.unfinished.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _g = self.done.lock().expect("task latch");
                self.done_cv.notify_all();
            }
        }
        if counted {
            ACTIVE.fetch_sub(1, Ordering::SeqCst);
        }
        counted
    }

    fn has_unclaimed(&self) -> bool {
        self.next.load(Ordering::SeqCst) < self.chunks
    }
}

/// Raw task pointer made sendable for the queue. Safety contract is
/// documented on [`Task`]: the pointee outlives both queue membership and
/// every registered helper.
#[derive(Clone, Copy)]
struct TaskRef(*const Task);
// SAFETY: a `TaskRef` only travels through the pool queue, and the submitter
// removes it from the queue and then waits for `helpers == 0` before the
// pointee's frame is torn down, so any thread holding the ref sees a live
// `Task` (all of whose fields are themselves thread-safe).
unsafe impl Send for TaskRef {}

struct Pool {
    queue: Mutex<VecDeque<TaskRef>>,
    work_cv: Condvar,
}

/// The lazily initialized global pool. `budget() - 1` workers are spawned
/// exactly once, here; every later parallel call only enqueues work.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        }));
        for i in 0..budget().saturating_sub(1) {
            std::thread::Builder::new()
                .name(format!("dynnet-rayon-{i}"))
                .spawn(move || worker_loop(pool))
                .expect("spawn pool worker");
            WORKERS_SPAWNED.fetch_add(1, Ordering::SeqCst);
        }
        pool
    })
}

/// Body of every pool worker: park until a task with unclaimed chunks is
/// queued, register as a helper (under the queue lock, which guarantees the
/// task pointer is alive), drain chunks, deregister. Workers never exit and
/// never panic (chunk panics are caught and re-raised on the submitter).
fn worker_loop(pool: &'static Pool) {
    loop {
        let task = {
            let mut q = pool.queue.lock().expect("pool queue");
            loop {
                // SAFETY: every `TaskRef` still in the queue points to a live
                // `Task` — the submitter dequeues it before its frame can end.
                if let Some(&tr) = q.iter().find(|tr| unsafe { (*tr.0).has_unclaimed() }) {
                    // SAFETY: same liveness invariant as above; registering as
                    // a helper while holding the queue lock means the submitter
                    // cannot observe `helpers == 0` and free the task in
                    // between.
                    unsafe { (*tr.0).helpers.fetch_add(1, Ordering::SeqCst) };
                    break tr;
                }
                q = pool.work_cv.wait(q).expect("pool queue");
            }
        };
        // SAFETY: this thread registered as a helper under the queue lock, so
        // the submitter's `helpers == 0` wait keeps the pointee alive until
        // the matching `fetch_sub` below.
        let task = unsafe { &*task.0 };
        task.execute_chunks();
        if task.helpers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = task.done.lock().expect("task latch");
            task.done_cv.notify_all();
        }
    }
}

/// Runs `run(0..chunks)` on the shared pool: enqueues the chunk set, wakes
/// the workers, participates from the calling thread, and blocks until every
/// chunk finished and no worker still references the task. Panics (with the
/// historical message) if any chunk panicked.
fn run_on_pool(chunks: usize, run: &(dyn Fn(usize) + Sync)) {
    debug_assert!(chunks >= 1);
    TASKS_POOLED.fetch_add(1, Ordering::SeqCst);
    let task = Task {
        // SAFETY: lifetime erasure only — the `'static` is a lie the rest of
        // this function makes true: `task` never escapes this frame alive
        // (dequeued below, then the submitter blocks until `unfinished == 0`
        // and `helpers == 0`), so no reader outlives the real borrow of `run`.
        run: unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(run)
        },
        next: AtomicUsize::new(0),
        chunks,
        unfinished: AtomicUsize::new(chunks),
        helpers: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        done: Mutex::new(()),
        done_cv: Condvar::new(),
    };
    let pool = pool();
    {
        let mut q = pool.queue.lock().expect("pool queue");
        q.push_back(TaskRef(&task));
    }
    // Wake only as many workers as the task can occupy (the submitter takes
    // one chunk stream itself) instead of the whole pool: on wide budgets a
    // thundering `notify_all` would have every parked worker lock and scan
    // the queue twice per simulated round. Busy workers rescan the queue
    // before parking, so capping the wakeups loses no work.
    let wake = chunks.saturating_sub(1).min(budget().saturating_sub(1));
    for _ in 0..wake {
        pool.work_cv.notify_one();
    }

    // The submitter is one of the task's executors.
    task.execute_chunks();

    // All chunks are claimed; pull the task off the queue so no new worker
    // can pick it up, then wait for in-flight chunks and helpers to drain.
    {
        let mut q = pool.queue.lock().expect("pool queue");
        q.retain(|tr| !std::ptr::eq(tr.0, &task));
    }
    {
        let mut g = task.done.lock().expect("task latch");
        while task.unfinished.load(Ordering::SeqCst) != 0
            || task.helpers.load(Ordering::SeqCst) != 0
        {
            g = task.done_cv.wait(g).expect("task latch");
        }
    }
    if task.panicked.load(Ordering::SeqCst) {
        panic!("worker thread panicked");
    }
}

/// Pointer wrapper that lets chunk closures share a base pointer across the
/// pool. Safety: every chunk touches a disjoint index range.
struct SharedPtr<T>(*mut T);
// SAFETY: the wrapper is only shared between chunk closures of one parallel
// call, and `Plan::range` hands every chunk a disjoint index range, so no two
// threads ever dereference the same offset.
unsafe impl<T> Sync for SharedPtr<T> {}
impl<T> SharedPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// The chunk plan of one parallel call: `chunks` contiguous ranges of
/// length `chunk_size` (the last one shorter) covering `0..len`.
struct Plan {
    chunk_size: usize,
    chunks: usize,
    len: usize,
}

/// Smallest chunk the planner will cut (except when the whole input is
/// smaller): below this the per-chunk atomic ticket and cache-line handoff
/// cost more than the work they distribute.
const MIN_CHUNK: usize = 64;

impl Plan {
    /// Plans `≈ width × chunk_factor()` contiguous chunks over `0..len`,
    /// clamped between [`MIN_CHUNK`] items per chunk (finer helps nobody)
    /// and one-chunk-per-thread (coarser would idle claimed threads).
    fn new(len: usize, width: usize) -> Plan {
        let width = width.max(1);
        let per_thread = len.div_ceil(width);
        let fine = len.div_ceil(width * chunk_factor());
        let chunk_size = fine.max(MIN_CHUNK).min(per_thread).max(1);
        Plan {
            chunk_size,
            chunks: len.div_ceil(chunk_size),
            len,
        }
    }

    #[inline]
    fn range(&self, i: usize) -> (usize, usize) {
        let start = i * self.chunk_size;
        (start, ((i + 1) * self.chunk_size).min(self.len))
    }
}

// ---------------------------------------------------------------------------
// Slice-parallel primitives
// ---------------------------------------------------------------------------

/// Runs `f(offset, chunk)` over contiguous chunks of `slice` in parallel.
fn for_each_chunk<T, F>(slice: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let width = call_width();
    let len = slice.len();
    if width <= 1 || len < 2 {
        CALLS_INLINE.fetch_add(1, Ordering::SeqCst);
        tracked(|| f(0, slice));
        return;
    }
    let plan = Plan::new(len, width);
    let base = SharedPtr(slice.as_mut_ptr());
    run_on_pool(plan.chunks, &|i| {
        let (start, end) = plan.range(i);
        // SAFETY: `Plan::range` ranges are disjoint and within `slice`, each
        // chunk index is claimed exactly once, and `slice` is mutably borrowed
        // for the whole (blocking) call — so this is a unique subslice.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(start, chunk);
    });
}

/// Maps `f(offset + i, item)` over the slice in parallel, preserving order.
/// Results are written straight into their index-ordered output slots — no
/// per-chunk vectors, no concatenation pass.
fn map_chunks<T, R, F>(slice: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let width = call_width();
    let len = slice.len();
    if width <= 1 || len < 2 {
        CALLS_INLINE.fetch_add(1, Ordering::SeqCst);
        return tracked(|| {
            slice
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect()
        });
    }
    let plan = Plan::new(len, width);
    let mut out: Vec<MaybeUninit<R>> = (0..len).map(|_| MaybeUninit::uninit()).collect();
    let base = SharedPtr(slice.as_mut_ptr());
    let sink = SharedPtr(out.as_mut_ptr());
    run_on_pool(plan.chunks, &|ci| {
        let (start, end) = plan.range(ci);
        for i in start..end {
            // SAFETY: indices are disjoint per chunk (`Plan::range`), both
            // `slice` and `out` live across the blocking call, and each output
            // slot is written at most once. On a chunk panic the submitter
            // re-panics and `out` is dropped without reading any slot
            // (MaybeUninit never drops payloads — written results leak,
            // which is safe).
            unsafe {
                let item = &mut *base.get().add(i);
                (*sink.get().add(i)).write(f(i, item));
            }
        }
    });
    let mut out = std::mem::ManuallyDrop::new(out);
    // SAFETY: `run_on_pool` returned without panicking, so all `len` slots
    // were written exactly once; `MaybeUninit<R>` has `R`'s layout, and
    // `ManuallyDrop` keeps the original allocation from being freed twice.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, len, out.capacity()) }
}

/// dynnet extension (not part of rayon's public API): runs
/// `f(offset, a_chunk, b_chunk)` over *aligned* contiguous shards of two
/// equal-length slices in parallel and returns the per-shard results in
/// shard (hence index) order.
///
/// This is the primitive behind the simulator's fused receive+publish pass:
/// each shard updates its node states and output slots together and returns
/// its shard-local changed-node list; concatenating the returned values in
/// order yields a result identical to one sequential left-to-right pass.
pub fn par_zip_shards<T, U, R, F>(a: &mut [T], b: &mut [U], f: F) -> Vec<R>
where
    T: Send,
    U: Send,
    R: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> R + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip_shards requires equal lengths");
    let width = call_width();
    let len = a.len();
    if width <= 1 || len < 2 {
        CALLS_INLINE.fetch_add(1, Ordering::SeqCst);
        return tracked(|| vec![f(0, a, b)]);
    }
    let plan = Plan::new(len, width);
    let mut out: Vec<MaybeUninit<R>> = (0..plan.chunks).map(|_| MaybeUninit::uninit()).collect();
    let base_a = SharedPtr(a.as_mut_ptr());
    let base_b = SharedPtr(b.as_mut_ptr());
    let sink = SharedPtr(out.as_mut_ptr());
    run_on_pool(plan.chunks, &|i| {
        let (start, end) = plan.range(i);
        // SAFETY: shard `i` owns the disjoint range `start..end` of both
        // slices (mutably borrowed for the whole blocking call) and is the
        // only writer of output slot `i`.
        unsafe {
            let ca = std::slice::from_raw_parts_mut(base_a.get().add(start), end - start);
            let cb = std::slice::from_raw_parts_mut(base_b.get().add(start), end - start);
            (*sink.get().add(i)).write(f(start, ca, cb));
        }
    });
    let mut out = std::mem::ManuallyDrop::new(out);
    // SAFETY: one write per shard covered all `plan.chunks` slots (the pool
    // call returned panic-free), `MaybeUninit<R>` has `R`'s layout, and
    // `ManuallyDrop` prevents a double free of the allocation.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut R, plan.chunks, out.capacity()) }
}

/// dynnet extension (not part of rayon's public API): runs
/// `f(region_index, start_offset, region_slice)` over caller-chosen
/// *uneven* contiguous regions of `slice` in parallel.
///
/// `bounds` must be an ascending sequence `[0, b1, …, slice.len()]`; region
/// `i` is `bounds[i]..bounds[i + 1]`. This is the primitive behind
/// shard-local CSR row compaction: row boundaries are not equal-sized, so
/// the caller cuts regions along row starts and each region rewrites its
/// rows without ever touching (or false-sharing cache lines with) a
/// neighboring region's arena range.
///
/// Regions are claimed by the same atomic ticket as every other pool call;
/// panics in a region propagate to the caller.
pub fn par_regions<T, F>(slice: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert!(
        bounds.first() == Some(&0) && bounds.last() == Some(&slice.len()),
        "par_regions bounds must start at 0 and end at slice.len()"
    );
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1]),
        "par_regions bounds must be ascending"
    );
    let regions = bounds.len() - 1;
    let width = call_width();
    if width <= 1 || regions <= 1 {
        CALLS_INLINE.fetch_add(1, Ordering::SeqCst);
        tracked(|| {
            for i in 0..regions {
                f(i, bounds[i], &mut slice[bounds[i]..bounds[i + 1]]);
            }
        });
        return;
    }
    let base = SharedPtr(slice.as_mut_ptr());
    run_on_pool(regions, &|i| {
        let (start, end) = (bounds[i], bounds[i + 1]);
        // SAFETY: the ascending-bounds assertion makes the regions disjoint
        // subranges of `slice`, which stays mutably borrowed for the whole
        // blocking call, and each region index is claimed exactly once by
        // the ticket — so this is a unique subslice.
        let region = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, start, region);
    });
}

/// The rayon-compatible entry points.
pub mod prelude {
    use super::{for_each_chunk, map_chunks};

    /// `par_iter_mut` on mutable slice-like collections.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by the parallel iterator.
        type Item: 'data;
        /// The parallel iterator type.
        type Iter;
        /// Starts a parallel iteration over `&mut self`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = ParIterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = ParIterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    /// Parallel iterator over `&mut [T]`.
    pub struct ParIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParIterMut<'a, T> {
        /// Pairs every item with its index.
        pub fn enumerate(self) -> ParEnumerate<'a, T> {
            ParEnumerate { slice: self.slice }
        }

        /// Applies `f` to every item in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            for_each_chunk(self.slice, |_, chunk| {
                for item in chunk.iter_mut() {
                    f(item);
                }
            });
        }

        /// Maps every item in parallel, preserving order.
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            R: Send,
            F: Fn(&mut T) -> R + Sync,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// Enumerated parallel iterator.
    pub struct ParEnumerate<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParEnumerate<'a, T> {
        /// Applies `f((index, item))` to every item in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut T)) + Sync,
        {
            for_each_chunk(self.slice, |offset, chunk| {
                for (i, item) in chunk.iter_mut().enumerate() {
                    f((offset + i, item));
                }
            });
        }

        /// Maps every `(index, item)` in parallel, preserving order.
        pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
        where
            R: Send,
            F: Fn((usize, &mut T)) -> R + Sync,
        {
            ParEnumerateMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// Lazy parallel map (unenumerated).
    pub struct ParMap<'a, T, F> {
        slice: &'a mut [T],
        f: F,
    }

    impl<'a, T, R, F> ParMap<'a, T, F>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        /// Runs the map and collects the results in index order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            map_chunks(self.slice, |_, item| f(item))
                .into_iter()
                .collect()
        }
    }

    /// Lazy parallel map over `(index, item)` pairs.
    pub struct ParEnumerateMap<'a, T, F> {
        slice: &'a mut [T],
        f: F,
    }

    impl<'a, T, R, F> ParEnumerateMap<'a, T, F>
    where
        T: Send,
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        /// Runs the map and collects the results in index order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = self.f;
            map_chunks(self.slice, |i, item| f((i, item)))
                .into_iter()
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let mut v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| *x * 2 + i as u64)
            .collect();
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, i as u64 * 3);
        }
    }

    #[test]
    fn for_each_mutates_every_item() {
        let mut v: Vec<usize> = vec![0; 5000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn unenumerated_variants() {
        let mut v: Vec<i32> = (0..100).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        let doubled: Vec<i32> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(doubled[0], 2);
        assert_eq!(doubled[99], 200);
    }

    #[test]
    fn tiny_and_empty_slices() {
        let mut v: Vec<u8> = vec![];
        let out: Vec<u8> = v.par_iter_mut().enumerate().map(|(_, x)| *x).collect();
        assert!(out.is_empty());
        let mut one = vec![41];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn par_zip_shards_matches_sequential_pass() {
        let n = 25_003;
        let mut a: Vec<u64> = (0..n as u64).collect();
        let mut b: Vec<u64> = vec![0; n];
        let shard_sums = super::par_zip_shards(&mut a, &mut b, |offset, ca, cb| {
            let mut changed = Vec::new();
            for (k, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                *y = *x + 1;
                if (offset + k) % 97 == 0 {
                    changed.push(offset + k);
                }
            }
            changed
        });
        // Shard results concatenate in index order.
        let merged: Vec<usize> = shard_sums.into_iter().flatten().collect();
        let expect: Vec<usize> = (0..n).filter(|i| i % 97 == 0).collect();
        assert_eq!(merged, expect);
        assert!(b.iter().enumerate().all(|(i, &y)| y == i as u64 + 1));
    }

    #[test]
    fn pool_reuses_workers_across_many_calls() {
        let mut v: Vec<u64> = (0..50_000).collect();
        let warm: Vec<u64> = v.par_iter_mut().map(|x| *x).collect();
        assert_eq!(warm.len(), 50_000);
        let before = pool_stats();
        for _ in 0..64 {
            let out: Vec<u64> = v.par_iter_mut().map(|x| *x + 1).collect();
            assert_eq!(out[17], 18);
        }
        let after = pool_stats();
        // A persistent pool: repeated parallel calls spawn no threads.
        assert_eq!(before.workers_spawned, after.workers_spawned);
        assert!(after.workers_spawned <= max_threads().saturating_sub(1));
    }

    #[test]
    fn env_override_is_resolved_once() {
        // Force resolution, then try to change the override mid-run: the
        // budget (and hence pool behavior) must not move.
        let resolved = max_threads();
        std::env::set_var("DYNNET_RAYON_THREADS", "1");
        assert_eq!(max_threads(), resolved, "env re-read after resolution");
        std::env::set_var("DYNNET_RAYON_THREADS", "4096");
        assert_eq!(max_threads(), resolved, "env re-read after resolution");
        std::env::remove_var("DYNNET_RAYON_THREADS");
        // And parallel calls still produce correct results.
        let mut v: Vec<u64> = (0..10_001).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, x)| *x + i as u64)
            .collect();
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, 2 * i as u64, "order must be preserved across chunks");
        }
    }

    #[test]
    fn budget_claims_shrink_and_restore() {
        let base = claimed_threads();
        let c1 = claim_threads(3);
        assert_eq!(claimed_threads(), base + 3);
        let c2 = claim_threads(2);
        assert_eq!(claimed_threads(), base + 5);
        drop(c2);
        drop(c1);
        assert_eq!(claimed_threads(), base);
    }

    #[test]
    fn full_budget_claim_degrades_to_inline() {
        let _claim = claim_threads(max_threads());
        let inline_before = pool_stats().calls_inline;
        let mut v: Vec<u64> = (0..5_000).collect();
        let out: Vec<u64> = v.par_iter_mut().map(|x| *x * 3).collect();
        assert!(out.iter().enumerate().all(|(i, &o)| o == 3 * i as u64));
        // The call ran inline on this thread: the pool was not involved.
        assert!(pool_stats().calls_inline > inline_before);
    }

    #[test]
    fn chunk_factor_changes_granularity_never_results() {
        let resolved = chunk_factor();
        assert!(resolved >= 1);
        let mut outputs = Vec::new();
        for f in [1, 2, 4, 16] {
            set_chunk_factor(f);
            let mut v: Vec<u64> = (0..10_000).collect();
            let out: Vec<u64> = v
                .par_iter_mut()
                .enumerate()
                .map(|(i, x)| *x + i as u64)
                .collect();
            outputs.push(out);
        }
        set_chunk_factor(resolved);
        for out in &outputs {
            assert_eq!(out, &outputs[0], "chunk factor must not change results");
        }
    }

    #[test]
    fn plan_respects_factor_floor_and_width() {
        // Large input: the factor multiplies the chunk count.
        let p = Plan::new(100_000, 4);
        assert!(p.chunks >= 4, "at least one chunk per thread");
        assert!(p.chunk_size >= MIN_CHUNK);
        assert_eq!(p.range(p.chunks - 1).1, 100_000, "last chunk ends at len");
        // Tiny input: the floor caps the chunk count instead.
        let tiny = Plan::new(100, 8);
        assert!(tiny.chunk_size >= 100usize.div_ceil(8 * chunk_factor()));
        assert_eq!(tiny.range(tiny.chunks - 1).1, 100);
    }

    #[test]
    fn par_regions_covers_uneven_bounds() {
        let n = 10_000;
        let mut v = vec![0u64; n];
        let bounds = vec![0, 17, 17, 5_000, n];
        super::par_regions(&mut v, &bounds, |ri, start, region| {
            for (k, x) in region.iter_mut().enumerate() {
                *x = ((ri as u64) << 32) | (start + k) as u64;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            let expect_region = match i {
                0..=16 => 0,
                17..=4_999 => 2,
                _ => 3,
            };
            assert_eq!(x, ((expect_region as u64) << 32) | i as u64, "index {i}");
        }
    }

    #[test]
    fn effective_width_degrades_under_full_claim() {
        assert!(effective_width() >= 1);
        let _claim = claim_threads(max_threads());
        assert_eq!(effective_width(), 1, "a full-budget claim leaves width 1");
    }

    #[test]
    fn chunk_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            let mut v: Vec<u64> = (0..10_000).collect();
            v.par_iter_mut().enumerate().for_each(|(i, _x)| {
                if i == 7_777 {
                    panic!("bad item");
                }
            });
        });
        assert!(
            result.is_err(),
            "the submitting call must observe the panic"
        );
        // The pool survives: the next call still works.
        let mut v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter_mut().map(|x| *x).collect();
        assert_eq!(out.len(), 10_000);
    }
}
