//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`] on top of the
//! vendored `rand` traits.
//!
//! This is a faithful ChaCha8 keystream generator (RFC 8439 block function
//! with 8 rounds): deterministic, platform-independent, `Clone`, and fast.
//! Seeding via [`rand::SeedableRng::seed_from_u64`] expands the 64-bit seed
//! into the 256-bit key with SplitMix64, mirroring what the real crate's
//! `seed_from_u64` does in spirit. Output sequences are not bit-compatible
//! with the real `rand_chacha` crate, but the workspace only requires
//! self-consistency across runs and platforms.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key (words 4..12 of the ChaCha state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14).
    counter: u64,
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            // "expand 32-byte k" constants.
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0, // nonce (unused: one stream per seed)
            0,
        ];
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit key.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for i in 0..4 {
            let w = next();
            key[2 * i] = w as u32;
            key[2 * i + 1] = (w >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn words_look_uniform() {
        // Crude sanity: bit frequency of 64k words stays near half.
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut ones = 0u64;
        for _ in 0..65_536 {
            ones += r.next_u32().count_ones() as u64;
        }
        let expected = 65_536u64 * 16;
        let dev = ones.abs_diff(expected);
        assert!(
            dev < expected / 100,
            "bit bias too large: {ones} vs {expected}"
        );
    }

    #[test]
    fn drives_high_level_rng_api() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
        let k: usize = r.gen_range(10..20);
        assert!((10..20).contains(&k));
    }
}
