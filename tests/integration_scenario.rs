//! Integration tests for the unified `Scenario` runner API and its streaming
//! observers: determinism through the builder, sequential-vs-parallel
//! agreement, equivalence of the streaming `TDynamicVerifier` with the batch
//! `verify_t_dynamic_run`, and equivalence of the `Scenario` path with the
//! legacy `adversary::run` shim.

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn record_run(seed: u64, parallel: bool) -> ExecutionRecord<ColorOutput> {
    let n = 48;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "scn"));
    let mut recorder = TraceRecorder::new();
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.03, 17))
        .seed(seed)
        .parallel(parallel)
        .parallel_threshold(0)
        .rounds(2 * window)
        .run(&mut [&mut recorder]);
    recorder.into_record()
}

#[test]
fn same_seed_gives_bit_identical_records_through_scenario() {
    let a = record_run(7, false);
    let b = record_run(7, false);
    assert_eq!(a.num_rounds(), b.num_rounds());
    for r in 0..a.num_rounds() {
        assert_eq!(
            a.outputs_at(r),
            b.outputs_at(r),
            "outputs diverge in round {r}"
        );
        assert_eq!(
            a.graph_at(r).edge_vec(),
            b.graph_at(r).edge_vec(),
            "graphs diverge in round {r}"
        );
        assert_eq!(a.reports[r].newly_awake, b.reports[r].newly_awake);
        assert_eq!(a.reports[r].num_awake, b.reports[r].num_awake);
    }
    // A different seed must diverge somewhere.
    let c = record_run(8, false);
    assert!(
        (0..a.num_rounds()).any(|r| a.outputs_at(r) != c.outputs_at(r)),
        "different seeds should produce different executions"
    );
}

#[test]
fn sequential_and_parallel_agree_via_the_builder() {
    let seq = record_run(9, false);
    let par = record_run(9, true);
    assert_eq!(seq.num_rounds(), par.num_rounds());
    for r in 0..seq.num_rounds() {
        assert_eq!(
            seq.outputs_at(r),
            par.outputs_at(r),
            "outputs diverge in round {r}"
        );
    }
}

#[test]
fn streaming_verifier_matches_batch_verifier_on_a_recorded_run() {
    let n = 40;
    let window = recommended_window(n);
    let rounds = 3 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(2, "scn2"));

    // One execution, verified both ways: streaming (observer, O(window)
    // memory) and batch (fully materialized record).
    let mut streaming = TDynamicVerifier::new(MisProblem, window);
    let mut recorder = TraceRecorder::new();
    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.08, 5))
        .seed(3)
        .rounds(rounds)
        .run(&mut [&mut streaming, &mut recorder]);
    let streaming_summary = streaming.into_summary();

    let record = recorder.into_record();
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<MisOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let batch_summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);

    assert_eq!(
        streaming_summary.rounds_checked,
        batch_summary.rounds_checked
    );
    assert_eq!(streaming_summary.rounds_valid, batch_summary.rounds_valid);
    assert_eq!(
        streaming_summary.rounds_partial_valid,
        batch_summary.rounds_partial_valid
    );
    assert_eq!(
        streaming_summary.total_packing_violations,
        batch_summary.total_packing_violations
    );
    assert_eq!(
        streaming_summary.total_covering_violations,
        batch_summary.total_covering_violations
    );
    assert_eq!(
        streaming_summary.total_undecided,
        batch_summary.total_undecided
    );
    assert_eq!(
        streaming_summary.first_valid_round,
        batch_summary.first_valid_round
    );
    assert_eq!(
        streaming_summary.invalid_rounds,
        batch_summary.invalid_rounds
    );
}

#[test]
fn scenario_path_equals_legacy_run_shim() {
    let n = 32;
    let window = recommended_window(n);
    let rounds = window + 5;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(3, "scn3"));

    // Legacy wiring.
    let mut sim = Simulator::new(
        n,
        dynamic_coloring(window),
        AllAtStart,
        SimConfig::sequential(4),
    );
    let mut adv = FlipChurnAdversary::new(&footprint, 0.02, 21);
    let legacy = run(&mut sim, &mut adv, rounds);

    // Scenario wiring.
    let mut recorder = TraceRecorder::new();
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.02, 21))
        .seed(4)
        .rounds(rounds)
        .run(&mut [&mut recorder]);
    let record = recorder.into_record();

    assert_eq!(legacy.num_rounds(), record.num_rounds());
    for r in 0..rounds {
        assert_eq!(legacy.outputs_at(r), record.outputs_at(r), "round {r}");
        assert_eq!(
            legacy.graph_at(r).edge_vec(),
            record.graph_at(r).edge_vec(),
            "round {r}"
        );
    }
}

#[test]
fn run_until_reports_rounds_executed_and_observers_finish() {
    let n = 20;
    let window = recommended_window(n);
    let g = generators::complete(n);
    let mut churn = ChurnStats::new();
    let mut tracker = ConvergenceTracker::new(|o: &ColorOutput| o.is_decided());
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(StaticAdversary::new(g))
        .seed(6)
        .rounds(10 * window)
        .run_until(&mut [&mut churn, &mut tracker], |view| {
            view.outputs
                .iter()
                .all(|o| o.map(|c: ColorOutput| c.is_decided()).unwrap_or(false))
        });
    assert!(
        runner.rounds_executed() < 10 * window,
        "complete-graph coloring converges fast"
    );
    assert_eq!(churn.series().len(), runner.rounds_executed());
    assert_eq!(
        tracker.all_done_round(),
        Some(runner.rounds_executed() as u64 - 1),
        "tracker and stop predicate agree on the completion round"
    );
}

#[test]
fn boxed_adversaries_plug_into_scenario() {
    let n = 24;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(4, "scn4"));
    let workloads: Vec<Box<dyn OutputAdversary<MisOutput>>> = vec![
        Box::new(StaticAdversary::new(footprint.clone())),
        Box::new(FlipChurnAdversary::new(&footprint, 0.05, 31)),
    ];
    for adv in workloads {
        let mut verifier = TDynamicVerifier::new(MisProblem, window);
        Scenario::new(n)
            .algorithm(dynamic_mis(n, window))
            .adversary(adv)
            .seed(7)
            .rounds(3 * window)
            .run(&mut [&mut verifier]);
        assert!(verifier.summary().all_valid());
    }
}
