//! Integration tests for Corollary 1.3 (dynamic MIS): per-round T-dynamic
//! validity under different adversaries, deterministic independence on
//! persistent edges, and the oblivious-vs-adaptive adversary distinction.

use dynnet::core::mis::{independence_violations, mis_size};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

#[test]
fn node_churn_workload_keeps_t_dynamic_mis() {
    let n = 48;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(1, "imis"));
    let mut adv = NodeChurnAdversary::new(footprint, 0.02, 0.10, 3);
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(1));
    let rounds = 3 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<MisOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
    assert!(summary.all_valid(), "invalid rounds: {:?}", summary.invalid_rounds);
}

#[test]
fn independence_on_the_window_intersection_is_never_violated() {
    // The packing half of Corollary 1.3 holds deterministically — check it
    // round by round (not only via the aggregate verifier) under heavy churn.
    let n = 40;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(2, "imis2"));
    let mut adv = FlipChurnAdversary::new(&footprint, 0.15, 5);
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(2));
    let rounds = 3 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let mut w = GraphWindow::new(n, window);
    for r in 0..rounds {
        w.push(&record.graph_at(r));
        let inter = w.intersection_graph();
        let out: Vec<MisOutput> = record
            .outputs_at(r)
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        assert_eq!(
            independence_violations(&inter, &out),
            0,
            "two adjacent MIS members on G^∩T in round {r}"
        );
    }
}

#[test]
fn adaptive_adversary_degrades_progress_but_not_packing() {
    // Lemma 5.2 needs a 2-oblivious adversary for the O(log n) progress
    // bound. An adaptive adversary that wires MIS members together can slow
    // convergence and force repairs, but the packing half must still hold on
    // the window intersection graph.
    let n = 36;
    let window = recommended_window(n);
    let footprint = generators::grid(6, 6);
    let mut adv: ConflictSeekingAdversary<MisOutput, _> = ConflictSeekingAdversary::new(
        footprint,
        |a: &MisOutput, b: &MisOutput| a.in_mis() && b.in_mis(),
        3,
        0.02,
        (2 * window) as u64,
        9,
    );
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(3));
    let rounds = 4 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let mut w = GraphWindow::new(n, window);
    for r in 0..rounds {
        w.push(&record.graph_at(r));
        let inter = w.intersection_graph();
        let out: Vec<MisOutput> = record
            .outputs_at(r)
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        assert_eq!(independence_violations(&inter, &out), 0, "round {r}");
    }
    // The MIS stays non-trivial throughout.
    let final_out: Vec<MisOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(MisOutput::Undecided))
        .collect();
    assert!(mis_size(&final_out) > 0);
}

#[test]
fn phase_adversary_static_then_chaotic_then_static_reconverges() {
    let n = 42;
    let window = recommended_window(n);
    let base = generators::random_geometric(n, 0.25, &mut experiment_rng(3, "imis3"));
    let chaotic = FlipChurnAdversary::new(&base, 0.2, 7);
    let phases: Vec<(u64, Box<dyn Adversary>)> = vec![
        (2 * window as u64, Box::new(StaticAdversary::new(base.clone()))),
        (window as u64, Box::new(chaotic)),
        (u64::MAX, Box::new(StaticAdversary::new(base.clone()))),
    ];
    let mut adv = PhaseAdversary::new(phases);
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(4));
    let rounds = 6 * window;
    let record = run(&mut sim, &mut adv, rounds);
    // After the final static phase has lasted 2T rounds, the output is a
    // plain MIS of the base graph and frozen.
    let final_out: Vec<MisOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(MisOutput::Undecided))
        .collect();
    assert_eq!(independence_violations(&base, &final_out), 0);
    assert_eq!(dynnet::core::mis::domination_violations(&base, &final_out), 0);
    let freeze_from = rounds - window;
    for r in freeze_from..rounds {
        assert_eq!(record.outputs_at(r), record.outputs_at(freeze_from), "round {r}");
    }
}
