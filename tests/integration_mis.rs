//! Integration tests for Corollary 1.3 (dynamic MIS): per-round T-dynamic
//! validity under different adversaries, deterministic independence on
//! persistent edges, and the oblivious-vs-adaptive adversary distinction —
//! driven through the `Scenario` API with streaming observers.

use dynnet::core::mis::{domination_violations, independence_violations, mis_size};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

#[test]
fn node_churn_workload_keeps_t_dynamic_mis() {
    let n = 48;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(1, "imis"));
    let rounds = 3 * window;
    let mut verifier = TDynamicVerifier::new(MisProblem, window);
    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(NodeChurnAdversary::new(footprint, 0.02, 0.10, 3))
        .seed(1)
        .rounds(rounds)
        .run(&mut [&mut verifier]);
    let summary = verifier.into_summary();
    assert!(
        summary.all_valid(),
        "invalid rounds: {:?}",
        summary.invalid_rounds
    );
}

/// Streaming observer: asserts, round by round, that no two adjacent nodes of
/// the window intersection graph are both in the MIS (the deterministic
/// packing half of Corollary 1.3). Holds only an O(window) graph ring.
struct IndependenceOnIntersection {
    window: GraphWindow,
}

impl RoundObserver<MisOutput> for IndependenceOnIntersection {
    fn on_round(&mut self, view: &RoundView<'_, MisOutput>) {
        self.window.push(view.current_graph());
        let inter = self.window.intersection_graph();
        let out: Vec<MisOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(MisOutput::Undecided))
            .collect();
        assert_eq!(
            independence_violations(&inter, &out),
            0,
            "two adjacent MIS members on G^∩T in round {}",
            view.round
        );
    }
}

#[test]
fn independence_on_the_window_intersection_is_never_violated() {
    // The packing half of Corollary 1.3 holds deterministically — check it
    // round by round (not only via the aggregate verifier) under heavy churn.
    let n = 40;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(2, "imis2"));
    let rounds = 3 * window;
    let mut independence = IndependenceOnIntersection {
        window: GraphWindow::new(n, window),
    };
    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.15, 5))
        .seed(2)
        .rounds(rounds)
        .run(&mut [&mut independence]);
}

#[test]
fn adaptive_adversary_degrades_progress_but_not_packing() {
    // Lemma 5.2 needs a 2-oblivious adversary for the O(log n) progress
    // bound. An adaptive adversary that wires MIS members together can slow
    // convergence and force repairs, but the packing half must still hold on
    // the window intersection graph.
    let n = 36;
    let window = recommended_window(n);
    let footprint = generators::grid(6, 6);
    let adv: ConflictSeekingAdversary<MisOutput, _> = ConflictSeekingAdversary::new(
        footprint,
        |a: &MisOutput, b: &MisOutput| a.in_mis() && b.in_mis(),
        3,
        0.02,
        (2 * window) as u64,
        9,
    );
    let rounds = 4 * window;
    let mut independence = IndependenceOnIntersection {
        window: GraphWindow::new(n, window),
    };
    let runner = Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(adv)
        .seed(3)
        .rounds(rounds)
        .run(&mut [&mut independence]);
    // The MIS stays non-trivial throughout.
    let final_out: Vec<MisOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(MisOutput::Undecided))
        .collect();
    assert!(mis_size(&final_out) > 0);
}

#[test]
fn phase_adversary_static_then_chaotic_then_static_reconverges() {
    let n = 42;
    let window = recommended_window(n);
    let base = generators::random_geometric(n, 0.25, &mut experiment_rng(3, "imis3"));
    let chaotic = FlipChurnAdversary::new(&base, 0.2, 7);
    let phases: Vec<(u64, Box<dyn Adversary>)> = vec![
        (
            2 * window as u64,
            Box::new(StaticAdversary::new(base.clone())),
        ),
        (window as u64, Box::new(chaotic)),
        (u64::MAX, Box::new(StaticAdversary::new(base.clone()))),
    ];
    let rounds = 6 * window;
    let mut churn = ChurnStats::new();
    let runner = Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(PhaseAdversary::new(phases))
        .seed(4)
        .rounds(rounds)
        .run(&mut [&mut churn]);
    // After the final static phase has lasted 2T rounds, the output is a
    // plain MIS of the base graph and frozen.
    let final_out: Vec<MisOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(MisOutput::Undecided))
        .collect();
    assert_eq!(independence_violations(&base, &final_out), 0);
    assert_eq!(domination_violations(&base, &final_out), 0);
    let freeze_from = rounds - window;
    assert_eq!(
        churn.total_from(freeze_from),
        0,
        "outputs still churning in the last window: {:?}",
        &churn.series()[freeze_from..]
    );
}
