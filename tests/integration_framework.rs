//! Integration tests for the framework layer: Theorem 1.1's two guarantees
//! verified end-to-end for both problems on shared adversarial schedules,
//! plus determinism of the simulator across execution modes.

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn collect<O: Clone>(record: &ExecutionRecord<O>) -> (Vec<Graph>, Vec<Vec<Option<O>>>) {
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs = (0..record.num_rounds())
        .map(|r| record.outputs_at(r).to_vec())
        .collect();
    (graphs, outputs)
}

#[test]
fn theorem_1_1_part1_coloring_and_mis_on_identical_schedules() {
    // Record one adversarial schedule and replay it for both combined
    // algorithms; each must output a T-dynamic solution in every round.
    let n = 40;
    let window = recommended_window(n);
    let rounds = 3 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "itf"));
    let mut churn = MarkovChurnAdversary::new(&footprint, 0.05, 0.05, true, 11);

    // Coloring run (records the trace).
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(5));
    let record = run(&mut sim, &mut churn, rounds);
    let (graphs, outputs) = collect(&record);
    let col = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
    assert!(col.all_valid(), "coloring invalid rounds: {:?}", col.invalid_rounds);

    // MIS run on the *identical* schedule via trace replay.
    let mut replay = ScriptedAdversary::new(record.trace.clone());
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(6));
    let record2 = run(&mut sim, &mut replay, rounds);
    let (graphs2, outputs2) = collect(&record2);
    assert_eq!(
        graphs.iter().map(|g| g.num_edges()).collect::<Vec<_>>(),
        graphs2.iter().map(|g| g.num_edges()).collect::<Vec<_>>(),
        "replay must reproduce the schedule"
    );
    let mis = verify_t_dynamic_run(&MisProblem, &graphs2, &outputs2, window, window - 1);
    assert!(mis.all_valid(), "MIS invalid rounds: {:?}", mis.invalid_rounds);
}

#[test]
fn theorem_1_1_part2_locally_static_stability_for_both_problems() {
    let n = 64;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let base = generators::grid(8, 8);
    let seeds = vec![NodeId::new(27), NodeId::new(36)];

    // Coloring.
    let mut adv = LocallyStaticAdversary::new(base.clone(), seeds.clone(), 2, 0.25, 3);
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(7));
    let record = run(&mut sim, &mut adv, rounds);
    let (_, outputs) = collect(&record);
    for &v in &seeds {
        assert!(
            verify_locally_static(&outputs, v, 2 * window, rounds - 1),
            "coloring output of protected node {v} not stable after 2T rounds"
        );
    }

    // MIS.
    let mut adv = LocallyStaticAdversary::new(base, seeds.clone(), 2, 0.25, 4);
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(8));
    let record = run(&mut sim, &mut adv, rounds);
    let (_, outputs) = collect(&record);
    for &v in &seeds {
        assert!(
            verify_locally_static(&outputs, v, 2 * window, rounds - 1),
            "MIS output of protected node {v} not stable after 2T rounds"
        );
    }
}

#[test]
fn sequential_and_parallel_execution_produce_identical_results() {
    let n = 60;
    let window = recommended_window(n);
    let rounds = window + 10;
    let footprint = generators::random_geometric(n, 0.22, &mut experiment_rng(2, "det"));

    let run_mode = |parallel: bool| {
        let config = SimConfig { seed: 99, parallel, parallel_threshold: 0 };
        let mut adv = FlipChurnAdversary::new(&footprint, 0.03, 21);
        let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, config);
        let record = run(&mut sim, &mut adv, rounds);
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect::<Vec<_>>()
    };

    assert_eq!(run_mode(false), run_mode(true));
}

#[test]
fn window_checker_agrees_with_bruteforce_window_views() {
    // The T-dynamic checker is only as good as the window maintenance; spot
    // check the two window views against brute force on an adversarial run.
    let n = 20;
    let footprint = generators::erdos_renyi_avg_degree(n, 4.0, &mut experiment_rng(3, "win"));
    let mut adv = RateChurnAdversary::new(footprint, 3, 3, 17);
    let mut g = Adversary::initial_graph(&mut adv);
    let mut w = GraphWindow::new(n, 6);
    for r in 1..40u64 {
        w.push(&g);
        assert_eq!(
            w.intersection_graph().edge_vec(),
            w.intersection_graph_bruteforce().edge_vec()
        );
        assert_eq!(w.union_graph().edge_vec(), w.union_graph_bruteforce().edge_vec());
        g = Adversary::next_graph(&mut adv, r, &g);
    }
}

#[test]
fn growth_adversary_with_combined_algorithms_stays_valid() {
    // Nodes join over time (network bootstrap) while the algorithm runs.
    let n = 48;
    let window = recommended_window(n);
    let rounds = 3 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(4, "growth"));
    let mut adv = GrowthAdversary::new(footprint, 4, 2);
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(9));
    let record = run(&mut sim, &mut adv, rounds);
    let (graphs, outputs) = collect(&record);
    let summary = verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);
    assert!(summary.all_valid(), "invalid rounds: {:?}", summary.invalid_rounds);
}
