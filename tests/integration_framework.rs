//! Integration tests for the framework layer: Theorem 1.1's two guarantees
//! verified end-to-end for both problems on shared adversarial schedules,
//! plus determinism of the simulator across execution modes — all through
//! the unified `Scenario` API with streaming observers.

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

#[test]
fn theorem_1_1_part1_coloring_and_mis_on_identical_schedules() {
    // Record one adversarial schedule and replay it for both combined
    // algorithms; each must output a T-dynamic solution in every round.
    let n = 40;
    let window = recommended_window(n);
    let rounds = 3 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "itf"));

    // Coloring run (records the trace for replay; verifies while streaming).
    let mut col_verifier = TDynamicVerifier::new(ColoringProblem, window);
    let mut recorder = TraceRecorder::graphs_only();
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(MarkovChurnAdversary::new(&footprint, 0.05, 0.05, true, 11))
        .seed(5)
        .rounds(rounds)
        .run(&mut [&mut col_verifier, &mut recorder]);
    let col = col_verifier.into_summary();
    assert!(
        col.all_valid(),
        "coloring invalid rounds: {:?}",
        col.invalid_rounds
    );

    // MIS run on the *identical* schedule via trace replay.
    let trace = recorder.into_trace().expect("recorded trace");
    let mut mis_verifier = TDynamicVerifier::new(MisProblem, window);
    let mut replay_recorder = TraceRecorder::graphs_only();
    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(ScriptedAdversary::new(trace.clone()))
        .seed(6)
        .rounds(rounds)
        .run(&mut [&mut mis_verifier, &mut replay_recorder]);
    let replayed = replay_recorder.into_trace().expect("recorded trace");
    assert_eq!(
        (0..rounds)
            .map(|r| trace.graph_at(r).num_edges())
            .collect::<Vec<_>>(),
        (0..rounds)
            .map(|r| replayed.graph_at(r).num_edges())
            .collect::<Vec<_>>(),
        "replay must reproduce the schedule"
    );
    let mis = mis_verifier.into_summary();
    assert!(
        mis.all_valid(),
        "MIS invalid rounds: {:?}",
        mis.invalid_rounds
    );
}

#[test]
fn theorem_1_1_part2_locally_static_stability_for_both_problems() {
    let n = 64;
    let window = recommended_window(n);
    let rounds = 4 * window;
    let base = generators::grid(8, 8);
    let seeds = vec![NodeId::new(27), NodeId::new(36)];

    // Coloring: the protected nodes' outputs must be decided and must not
    // change after round 2T (streaming check via ChurnStats).
    let mut churn = ChurnStats::new();
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(LocallyStaticAdversary::new(
            base.clone(),
            seeds.clone(),
            2,
            0.25,
            3,
        ))
        .seed(7)
        .rounds(rounds)
        .run(&mut [&mut churn]);
    for &v in &seeds {
        assert!(
            runner.outputs()[v.index()]
                .map(|o: ColorOutput| o.is_decided())
                .unwrap_or(false),
            "coloring output of protected node {v} undecided at the end"
        );
        let last = churn.last_change_round(v);
        assert!(
            last.is_none_or(|r| r < 2 * window),
            "coloring output of protected node {v} changed in round {last:?} >= 2T"
        );
    }

    // MIS.
    let mut churn = ChurnStats::new();
    let runner = Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(LocallyStaticAdversary::new(base, seeds.clone(), 2, 0.25, 4))
        .seed(8)
        .rounds(rounds)
        .run(&mut [&mut churn]);
    for &v in &seeds {
        assert!(
            runner.outputs()[v.index()]
                .map(|o: MisOutput| o.is_decided())
                .unwrap_or(false),
            "MIS output of protected node {v} undecided at the end"
        );
        let last = churn.last_change_round(v);
        assert!(
            last.is_none_or(|r| r < 2 * window),
            "MIS output of protected node {v} changed in round {last:?} >= 2T"
        );
    }
}

#[test]
fn sequential_and_parallel_execution_produce_identical_results() {
    let n = 60;
    let window = recommended_window(n);
    let rounds = window + 10;
    let footprint = generators::random_geometric(n, 0.22, &mut experiment_rng(2, "det"));

    let run_mode = |parallel: bool| {
        let mut recorder = TraceRecorder::new();
        Scenario::new(n)
            .algorithm(dynamic_coloring(window))
            .adversary(FlipChurnAdversary::new(&footprint, 0.03, 21))
            .seed(99)
            .parallel(parallel)
            .parallel_threshold(0)
            .rounds(rounds)
            .run(&mut [&mut recorder]);
        let record = recorder.into_record();
        (0..rounds)
            .map(|r| record.outputs_at(r).to_vec())
            .collect::<Vec<_>>()
    };

    assert_eq!(run_mode(false), run_mode(true));
}

#[test]
fn window_checker_agrees_with_bruteforce_window_views() {
    // The T-dynamic checker is only as good as the window maintenance; spot
    // check the two window views against brute force on an adversarial run.
    let n = 20;
    let footprint = generators::erdos_renyi_avg_degree(n, 4.0, &mut experiment_rng(3, "win"));
    let mut adv = RateChurnAdversary::new(footprint, 3, 3, 17);
    let mut g = Adversary::initial_graph(&mut adv);
    let mut w = GraphWindow::new(n, 6);
    for r in 1..40u64 {
        w.push(&g);
        assert_eq!(
            w.intersection_graph().edge_vec(),
            w.intersection_graph_bruteforce().edge_vec()
        );
        assert_eq!(
            w.union_graph().edge_vec(),
            w.union_graph_bruteforce().edge_vec()
        );
        g = Adversary::next_graph(&mut adv, r, &g);
    }
}

#[test]
fn growth_adversary_with_combined_algorithms_stays_valid() {
    // Nodes join over time (network bootstrap) while the algorithm runs.
    let n = 48;
    let window = recommended_window(n);
    let rounds = 3 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(4, "growth"));
    let mut verifier = TDynamicVerifier::new(MisProblem, window);
    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(GrowthAdversary::new(footprint, 4, 2))
        .seed(9)
        .rounds(rounds)
        .run(&mut [&mut verifier]);
    let summary = verifier.into_summary();
    assert!(
        summary.all_valid(),
        "invalid rounds: {:?}",
        summary.invalid_rounds
    );
}
