//! Sequential/parallel equivalence of the round pipeline's output-churn
//! tracking.
//!
//! The simulator fuses output publication and churn detection into the
//! receive phase; on the parallel path each worker shard publishes its
//! nodes' outputs and emits a shard-local changed list, and the shard lists
//! are concatenated in node order. This suite pins the contract that makes
//! the incremental verifier sound on the parallel path: for every built-in
//! adversary × {MIS, coloring}, `StepSummary::changed_outputs` (observed
//! through `RoundView::changed_outputs`) and the final outputs are
//! *byte-identical* between sequential and rayon-parallel execution —
//! per-(seed, node, round) randomness makes the executions themselves
//! identical, and the shard merge must not reorder or drop churn entries.

use dynnet::graph::DynamicGraphTrace;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::runtime::AlgorithmFactory;
use std::sync::Mutex;

const N: usize = 24;
const WINDOW: usize = 4;

/// Work-stealing chunk granularities the parallel leg is replayed under:
/// 1×, 2×, and 4× (the default) chunks per claimed thread. Results must be
/// byte-identical at every granularity — shards are contiguous index ranges
/// concatenated in order, so chunking is scheduling-only.
const CHUNK_FACTORS: [usize; 3] = [1, 2, 4];

/// `rayon::set_chunk_factor` writes a process-wide knob; tests in this
/// binary run concurrently, so every factor-varying section serializes here
/// and restores the default before releasing the lock.
static CHUNK_KNOB: Mutex<()> = Mutex::new(());

fn footprint(seed: u64) -> Graph {
    generators::erdos_renyi_avg_degree(N, 4.0, &mut experiment_rng(seed, "par-eq"))
}

/// Collects every round's exact churn list as reported by the simulator.
struct ChurnCollector {
    rounds: Vec<Vec<NodeId>>,
}

impl<O> RoundObserver<O> for ChurnCollector {
    fn on_round(&mut self, view: &RoundView<'_, O>) {
        let changed = view
            .changed_outputs
            .expect("the simulator always tracks output churn");
        // The churn list is sorted ascending by construction on both paths.
        assert!(changed.windows(2).all(|w| w[0] < w[1]), "unsorted churn");
        self.rounds.push(changed.to_vec());
    }
}

/// Runs the same scenario sequentially and parallel (threshold 0, so the
/// parallel path is exercised regardless of `n`) and asserts identical
/// per-round churn lists and final outputs. Factory and adversary are
/// handed in as builders because neither the combined-algorithm factories
/// nor every adversary is `Clone`; determinism comes from the builders
/// producing identical values.
fn assert_seq_par_identical<A, F, Adv>(
    name: &str,
    mk_factory: impl Fn() -> F,
    mk_adversary: impl Fn() -> Adv,
    rounds: usize,
) where
    A: NodeAlgorithm,
    A::Output: std::fmt::Debug,
    F: AlgorithmFactory<A>,
    Adv: OutputAdversary<A::Output>,
{
    let run = |parallel: bool| {
        let mut churn = ChurnCollector { rounds: Vec::new() };
        let runner = Scenario::new(N)
            .algorithm(mk_factory())
            .adversary(mk_adversary())
            .seed(11)
            .parallel(parallel)
            .parallel_threshold(0)
            .rounds(rounds)
            .run(&mut [&mut churn]);
        assert_eq!(churn.rounds.len(), rounds, "{name}: observer missed rounds");
        (churn.rounds, runner.outputs().to_vec())
    };
    let (seq_churn, seq_outputs) = run(false);
    let _knob = CHUNK_KNOB
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for factor in CHUNK_FACTORS {
        rayon::set_chunk_factor(factor);
        let (par_churn, par_outputs) = run(true);
        assert_eq!(
            seq_churn, par_churn,
            "{name}: changed_outputs diverged at chunk factor {factor}"
        );
        assert_eq!(
            seq_outputs, par_outputs,
            "{name}: final outputs diverged at chunk factor {factor}"
        );
    }
    rayon::set_chunk_factor(rayon::DEFAULT_CHUNK_FACTOR);
}

/// Runs one adversary against the combined coloring and MIS algorithms.
/// The adversary argument is an *expression* re-evaluated per run, so it
/// need not be `Clone`.
macro_rules! check_both_problems {
    ($name:expr, $mk_coloring_adv:expr, $mk_mis_adv:expr) => {
        let rounds = 4 * WINDOW + 8;
        assert_seq_par_identical(
            concat!($name, "/coloring"),
            || dynamic_coloring(WINDOW),
            || $mk_coloring_adv,
            rounds,
        );
        assert_seq_par_identical(
            concat!($name, "/mis"),
            || dynamic_mis(N, WINDOW),
            || $mk_mis_adv,
            rounds,
        );
    };
    ($name:expr, $mk_adv:expr) => {
        check_both_problems!($name, $mk_adv, $mk_adv)
    };
}

#[test]
fn static_adversary() {
    check_both_problems!("static", StaticAdversary::new(footprint(1)));
}

#[test]
fn scripted_adversary() {
    let rounds = 4 * WINDOW + 8;
    let mut churn = FlipChurnAdversary::new(&footprint(2), 0.05, 3);
    let g0 = Adversary::initial_graph(&mut churn);
    let mut trace = DynamicGraphTrace::new(g0.clone());
    let mut g = g0;
    for r in 1..rounds as u64 {
        let d = Adversary::next_delta(&mut churn, r, &g);
        d.apply(&mut g);
        trace.push_delta(d);
    }
    check_both_problems!("scripted", ScriptedAdversary::new(trace.clone()));
}

#[test]
fn phase_adversary() {
    let mk = || {
        PhaseAdversary::new(vec![
            (
                0,
                Box::new(StaticAdversary::new(footprint(4))) as Box<dyn Adversary>,
            ),
            (6, Box::new(FlipChurnAdversary::new(&footprint(4), 0.08, 5))),
            (
                (2 * WINDOW + 4) as u64,
                Box::new(RateChurnAdversary::new(footprint(4), 2, 2, 6)),
            ),
        ])
    };
    check_both_problems!("phase", mk(), mk());
}

#[test]
fn markov_churn_adversary() {
    check_both_problems!(
        "markov",
        MarkovChurnAdversary::new(&footprint(7), 0.1, 0.1, true, 8)
    );
}

#[test]
fn flip_churn_adversary() {
    check_both_problems!("flip", FlipChurnAdversary::new(&footprint(9), 0.08, 10));
}

#[test]
fn rate_churn_adversary() {
    check_both_problems!("rate", RateChurnAdversary::new(footprint(11), 3, 3, 12));
}

#[test]
fn burst_adversary() {
    check_both_problems!(
        "burst",
        BurstAdversary::new(
            footprint(13),
            (WINDOW + 2) as u64,
            (WINDOW / 2 + 1) as u64,
            4,
            14
        )
    );
}

#[test]
fn node_churn_adversary() {
    check_both_problems!(
        "node-churn",
        NodeChurnAdversary::new(footprint(15), 0.05, 0.2, 16)
    );
}

#[test]
fn growth_adversary() {
    check_both_problems!("growth", GrowthAdversary::new(footprint(17), 6, 2));
}

#[test]
fn mobility_adversary() {
    check_both_problems!(
        "mobility",
        MobilityAdversary::new(
            MobilityConfig {
                n: N,
                radius: 0.3,
                ..Default::default()
            },
            18,
        )
    );
}

#[test]
fn locally_static_adversary() {
    check_both_problems!(
        "locally-static",
        LocallyStaticAdversary::new(footprint(19), vec![NodeId::new(0)], 2, 0.2, 20)
    );
}

#[test]
fn conflict_seeking_adversary() {
    check_both_problems!(
        "conflict-seeking",
        ConflictSeekingAdversary::new(
            footprint(21),
            |a: &ColorOutput, b: &ColorOutput| {
                matches!((a, b), (ColorOutput::Colored(x), ColorOutput::Colored(y)) if x == y)
            },
            3,
            0.05,
            (2 * WINDOW) as u64,
            22,
        ),
        ConflictSeekingAdversary::new(
            footprint(21),
            |a: &MisOutput, b: &MisOutput| matches!((a, b), (MisOutput::InMis, MisOutput::InMis)),
            3,
            0.05,
            (2 * WINDOW) as u64,
            22,
        )
    );
}

/// The incremental T-dynamic verifier consumes the parallel path's churn
/// lists unchanged: verifying a parallel execution must yield the same
/// summary as verifying the sequential one.
#[test]
fn verifier_summary_identical_across_paths() {
    let run = |parallel: bool| {
        let mut verifier = TDynamicVerifier::new(ColoringProblem, WINDOW);
        Scenario::new(N)
            .algorithm(dynamic_coloring(WINDOW))
            .adversary(FlipChurnAdversary::new(&footprint(23), 0.06, 24))
            .seed(11)
            .parallel(parallel)
            .parallel_threshold(0)
            .rounds(4 * WINDOW + 8)
            .run(&mut [&mut verifier]);
        verifier.into_summary()
    };
    assert_eq!(run(false), run(true));
}
