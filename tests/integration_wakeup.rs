//! Integration tests for asynchronous wake-up (Section 2 / Section 7.2):
//! all algorithms use a single uniform round type, so nodes may join the
//! execution at arbitrary times without a shared round counter.

use dynnet::core::coloring::conflict_edges;
use dynnet::core::mis::{domination_violations, independence_violations};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

#[test]
fn staggered_wakeup_still_yields_a_proper_coloring() {
    let n = 36;
    let window = recommended_window(n);
    let g = generators::grid(6, 6);
    let wake = Staggered { stride: 2, max_round: (2 * window) as u64 };
    let mut sim = Simulator::new(n, dynamic_coloring(window), wake, SimConfig::sequential(1));
    let mut adv = StaticAdversary::new(g.clone());
    let rounds = 6 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let out: Vec<ColorOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    assert!(out.iter().all(|o| o.is_decided()), "everyone eventually colored");
    assert_eq!(conflict_edges(&g, &out), 0);
}

#[test]
fn random_wakeup_with_churn_keeps_window_solutions_consistent() {
    // Even while nodes are still waking up, the decided part of the combined
    // coloring must be consistent with respect to the sliding window in
    // every round: proper on the intersection graph and degree-bounded on
    // the union graph. (Conflicts on brand-new edges of the *current* graph
    // are explicitly allowed by the T-dynamic definition and are resolved
    // within T rounds.)
    let n = 40;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "wake"));
    let wake = RandomWakeup::new(n, (2 * window) as u64, 77);
    let mut sim = Simulator::new(n, dynamic_coloring(window), wake, SimConfig::sequential(2));
    let mut adv = FlipChurnAdversary::new(&footprint, 0.03, 3);
    let rounds = 5 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let mut w = GraphWindow::new(n, window);
    for r in 0..rounds {
        w.push(&record.graph_at(r));
        let report = check_t_dynamic(&ColoringProblem, &w, record.outputs_at(r));
        assert!(
            report.is_partial_solution(),
            "window-inconsistent decided output in round {r}: {report:?}"
        );
    }
    // Once every node has been awake for a full window, full solutions are
    // required and present.
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<ColorOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let summary =
        verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, 3 * window);
    assert!(summary.all_valid(), "invalid rounds: {:?}", summary.invalid_rounds);
}

#[test]
fn mis_with_staggered_wakeup_converges_to_a_maximal_independent_set() {
    let n = 30;
    let window = recommended_window(n);
    let g = generators::random_geometric(n, 0.3, &mut experiment_rng(2, "wake-mis"));
    let wake = Staggered { stride: 3, max_round: (2 * window) as u64 };
    let mut sim = Simulator::new(n, dynamic_mis(n, window), wake, SimConfig::sequential(3));
    let mut adv = StaticAdversary::new(g.clone());
    let rounds = 7 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let out: Vec<MisOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(MisOutput::Undecided))
        .collect();
    assert!(out.iter().all(|o| o.is_decided()));
    assert_eq!(independence_violations(&g, &out), 0);
    assert_eq!(domination_violations(&g, &out), 0);
}

#[test]
fn late_wakers_join_without_disturbing_stable_neighbors() {
    // A path where the two endpoints wake up very late: the middle segment
    // stabilizes first and must not change its output when the endpoints join.
    let n = 12;
    let window = recommended_window(n);
    let g = generators::path(n);
    let mut wake_rounds = vec![0u64; n];
    wake_rounds[0] = (3 * window) as u64;
    wake_rounds[n - 1] = (3 * window) as u64;
    let wake = ScriptedWakeup { rounds: wake_rounds };
    let mut sim = Simulator::new(n, dynamic_coloring(window), wake, SimConfig::sequential(4));
    let mut adv = StaticAdversary::new(g.clone());
    let rounds = 6 * window;
    let record = run(&mut sim, &mut adv, rounds);
    // Snapshot of the "deep interior" (distance ≥ 2 from the late wakers,
    // so their 2-neighborhood never changes) just before the late wake-up.
    let before = 3 * window - 1;
    for i in 3..n - 3 {
        let stable = record.outputs_at(before)[i];
        assert!(stable.unwrap().is_decided());
        for r in before..rounds {
            assert_eq!(
                record.outputs_at(r)[i],
                stable,
                "interior node {i} changed output in round {r} after late wake-ups"
            );
        }
    }
    // The late wakers themselves end up properly colored.
    let final_out: Vec<ColorOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    assert!(final_out.iter().all(|o| o.is_decided()));
    assert_eq!(conflict_edges(&g, &final_out), 0);
}

use dynnet::runtime::ScriptedWakeup;
