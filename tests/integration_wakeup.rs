//! Integration tests for asynchronous wake-up (Section 2 / Section 7.2):
//! all algorithms use a single uniform round type, so nodes may join the
//! execution at arbitrary times without a shared round counter — driven
//! through the `Scenario` API with streaming observers.

use dynnet::core::coloring::conflict_edges;
use dynnet::core::mis::{domination_violations, independence_violations};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::runtime::ScriptedWakeup;

#[test]
fn staggered_wakeup_still_yields_a_proper_coloring() {
    let n = 36;
    let window = recommended_window(n);
    let g = generators::grid(6, 6);
    let rounds = 6 * window;
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(StaticAdversary::new(g.clone()))
        .wakeup(Staggered {
            stride: 2,
            max_round: (2 * window) as u64,
        })
        .seed(1)
        .rounds(rounds)
        .run(&mut []);
    let out: Vec<ColorOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    assert!(
        out.iter().all(|o| o.is_decided()),
        "everyone eventually colored"
    );
    assert_eq!(conflict_edges(&g, &out), 0);
}

/// Streaming observer: in every round, the decided part of the output must be
/// consistent with the sliding window (a partial solution: proper on the
/// intersection graph, degree-bounded on the union graph).
struct PartialSolutionEveryRound {
    window: GraphWindow,
}

impl RoundObserver<ColorOutput> for PartialSolutionEveryRound {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        self.window.push(view.current_graph());
        let report = check_t_dynamic(&ColoringProblem, &self.window, view.outputs);
        assert!(
            report.is_partial_solution(),
            "window-inconsistent decided output in round {}: {report:?}",
            view.round
        );
    }
}

#[test]
fn random_wakeup_with_churn_keeps_window_solutions_consistent() {
    // Even while nodes are still waking up, the decided part of the combined
    // coloring must be consistent with respect to the sliding window in
    // every round: proper on the intersection graph and degree-bounded on
    // the union graph. (Conflicts on brand-new edges of the *current* graph
    // are explicitly allowed by the T-dynamic definition and are resolved
    // within T rounds.)
    let n = 40;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "wake"));
    let rounds = 5 * window;
    let mut partial = PartialSolutionEveryRound {
        window: GraphWindow::new(n, window),
    };
    // Once every node has been awake for a full window, full solutions are
    // required and present.
    let mut verifier = TDynamicVerifier::new(ColoringProblem, window).check_from(3 * window);
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.03, 3))
        .wakeup(RandomWakeup::new(n, (2 * window) as u64, 77))
        .seed(2)
        .rounds(rounds)
        .run(&mut [&mut partial, &mut verifier]);
    let summary = verifier.into_summary();
    assert!(
        summary.all_valid(),
        "invalid rounds: {:?}",
        summary.invalid_rounds
    );
}

#[test]
fn mis_with_staggered_wakeup_converges_to_a_maximal_independent_set() {
    let n = 30;
    let window = recommended_window(n);
    let g = generators::random_geometric(n, 0.3, &mut experiment_rng(2, "wake-mis"));
    let rounds = 7 * window;
    let runner = Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(StaticAdversary::new(g.clone()))
        .wakeup(Staggered {
            stride: 3,
            max_round: (2 * window) as u64,
        })
        .seed(3)
        .rounds(rounds)
        .run(&mut []);
    let out: Vec<MisOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(MisOutput::Undecided))
        .collect();
    assert!(out.iter().all(|o| o.is_decided()));
    assert_eq!(independence_violations(&g, &out), 0);
    assert_eq!(domination_violations(&g, &out), 0);
}

/// Streaming observer: snapshots the given nodes' outputs at round
/// `snapshot_at` and asserts they never change afterwards.
struct StableAfter {
    snapshot_at: u64,
    nodes: Vec<NodeId>,
    snapshot: Option<Vec<Option<ColorOutput>>>,
}

impl RoundObserver<ColorOutput> for StableAfter {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round == self.snapshot_at {
            let snap: Vec<Option<ColorOutput>> =
                self.nodes.iter().map(|v| view.outputs[v.index()]).collect();
            for (v, o) in self.nodes.iter().zip(&snap) {
                assert!(
                    o.map(|o| o.is_decided()).unwrap_or(false),
                    "node {v} undecided at snapshot round"
                );
            }
            self.snapshot = Some(snap);
        } else if let Some(snap) = &self.snapshot {
            for (v, expected) in self.nodes.iter().zip(snap) {
                assert_eq!(
                    view.outputs[v.index()],
                    *expected,
                    "interior node {v} changed output in round {} after late wake-ups",
                    view.round
                );
            }
        }
    }
}

#[test]
fn late_wakers_join_without_disturbing_stable_neighbors() {
    // A path where the two endpoints wake up very late: the middle segment
    // stabilizes first and must not change its output when the endpoints join.
    let n = 12;
    let window = recommended_window(n);
    let g = generators::path(n);
    let mut wake_rounds = vec![0u64; n];
    wake_rounds[0] = (3 * window) as u64;
    wake_rounds[n - 1] = (3 * window) as u64;
    let rounds = 6 * window;
    // "Deep interior" nodes (distance ≥ 2 from the late wakers, so their
    // 2-neighborhood never changes) must be frozen from just before the late
    // wake-up to the end.
    let mut stable = StableAfter {
        snapshot_at: (3 * window - 1) as u64,
        nodes: (3..n - 3).map(NodeId::new).collect(),
        snapshot: None,
    };
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(StaticAdversary::new(g.clone()))
        .wakeup(ScriptedWakeup {
            rounds: wake_rounds,
        })
        .seed(4)
        .rounds(rounds)
        .run(&mut [&mut stable]);
    // The late wakers themselves end up properly colored.
    let final_out: Vec<ColorOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    assert!(final_out.iter().all(|o| o.is_decided()));
    assert_eq!(conflict_edges(&g, &final_out), 0);
}
