//! Integration tests for Corollary 1.2 (dynamic (degree+1)-coloring):
//! conflict-resolution latency after adversarial edge insertions, color-range
//! bounds under churn, and behaviour under mobility.

use dynnet::core::coloring::{conflict_edges, max_color_used};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

#[test]
fn injected_conflicts_resolve_within_one_window() {
    let n = 49;
    let window = recommended_window(n);
    let base = generators::grid(7, 7);
    let mut adv = BurstAdversary::new(base, (2 * window) as u64, (10 * window) as u64, 5, 2);
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(1));
    let rounds = 5 * window;
    let record = run(&mut sim, &mut adv, rounds);

    // Longest consecutive run of rounds with at least one conflict on the
    // current graph must stay below the window size T.
    let mut longest = 0usize;
    let mut current = 0usize;
    for r in window..rounds {
        let g = record.graph_at(r);
        let out: Vec<ColorOutput> = record
            .outputs_at(r)
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        if conflict_edges(&g, &out) > 0 {
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    assert!(longest < window, "conflicts persisted {longest} ≥ T = {window} rounds");
}

#[test]
fn colors_stay_within_union_degree_bound_under_heavy_churn() {
    let n = 40;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(1, "icol"));
    let mut adv = FlipChurnAdversary::new(&footprint, 0.10, 3);
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(2));
    let rounds = 3 * window;
    let record = run(&mut sim, &mut adv, rounds);

    // Check the covering bound per round against the window's union degree.
    let mut w = GraphWindow::new(n, window);
    for r in 0..rounds {
        w.push(&record.graph_at(r));
        if r < window - 1 {
            continue;
        }
        for (i, o) in record.outputs_at(r).iter().enumerate() {
            if let Some(ColorOutput::Colored(c)) = o {
                let bound = w.union_degree(NodeId::new(i)) + 1;
                assert!(*c <= bound, "round {r}: node {i} has color {c} > d^∪T+1 = {bound}");
            }
        }
    }
    // And the palette never explodes: far fewer colors than n are in use.
    let final_out: Vec<ColorOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    assert!(max_color_used(&final_out) <= footprint.max_degree() + 1);
}

#[test]
fn mobility_workload_keeps_t_dynamic_coloring() {
    let n = 50;
    let window = recommended_window(n);
    let mut adv = MobilityAdversary::new(
        MobilityConfig { n, radius: 0.22, min_speed: 0.002, max_speed: 0.012 },
        5,
    );
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(3));
    let rounds = 3 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<ColorOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
    assert!(summary.all_valid(), "invalid rounds: {:?}", summary.invalid_rounds);
}

#[test]
fn adaptive_conflict_seeking_adversary_cannot_break_validity() {
    // The coloring analysis tolerates even adaptive adversaries; an
    // output-aware adversary that keeps wiring equally-colored nodes together
    // must not be able to make any round's output invalid.
    let n = 36;
    let window = recommended_window(n);
    let footprint = generators::grid(6, 6);
    let mut adv: ConflictSeekingAdversary<ColorOutput, _> = ConflictSeekingAdversary::new(
        footprint,
        |a: &ColorOutput, b: &ColorOutput| {
            matches!((a, b), (ColorOutput::Colored(x), ColorOutput::Colored(y)) if x == y)
        },
        3,
        0.02,
        (2 * window) as u64,
        7,
    );
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(4));
    let rounds = 4 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let graphs: Vec<Graph> = record.trace.iter().collect();
    let outputs: Vec<Vec<Option<ColorOutput>>> =
        (0..rounds).map(|r| record.outputs_at(r).to_vec()).collect();
    let summary = verify_t_dynamic_run(&ColoringProblem, &graphs, &outputs, window, window - 1);
    assert!(summary.all_valid(), "invalid rounds: {:?}", summary.invalid_rounds);
}

#[test]
fn tdma_application_has_collision_free_frames_once_stable() {
    // The motivating application: once the coloring has stabilized on a
    // static network, every TDMA frame is collision free.
    let n = 30;
    let window = recommended_window(n);
    let g = generators::random_geometric(n, 0.3, &mut experiment_rng(2, "tdma"));
    let mut adv = StaticAdversary::new(g.clone());
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(5));
    let rounds = 3 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let out: Vec<ColorOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    let frame = tdma::run_frame(&g, &out);
    assert_eq!(frame.collided, 0);
    assert_eq!(frame.silent, 0);
    assert!(frame.frame_length <= g.max_degree() + 1);
}
