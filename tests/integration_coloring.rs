//! Integration tests for Corollary 1.2 (dynamic (degree+1)-coloring):
//! conflict-resolution latency after adversarial edge insertions, color-range
//! bounds under churn, and behaviour under mobility — driven through the
//! `Scenario` API with streaming observers.

use dynnet::algorithms::apps::tdma;
use dynnet::core::coloring::{conflict_edges, max_color_used};
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

/// Streaming observer: longest streak of consecutive rounds (from `from` on)
/// with at least one conflict on the current graph.
struct ConflictStreak {
    from: u64,
    current: usize,
    longest: usize,
}

impl RoundObserver<ColorOutput> for ConflictStreak {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        if view.round < self.from {
            return;
        }
        let g = view.current_graph();
        let out: Vec<ColorOutput> = view
            .outputs
            .iter()
            .map(|o| o.unwrap_or(ColorOutput::Undecided))
            .collect();
        if conflict_edges(g, &out) > 0 {
            self.current += 1;
            self.longest = self.longest.max(self.current);
        } else {
            self.current = 0;
        }
    }
}

#[test]
fn injected_conflicts_resolve_within_one_window() {
    let n = 49;
    let window = recommended_window(n);
    let base = generators::grid(7, 7);
    let rounds = 5 * window;

    // Longest consecutive run of rounds with at least one conflict on the
    // current graph must stay below the window size T.
    let mut streak = ConflictStreak {
        from: window as u64,
        current: 0,
        longest: 0,
    };
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(BurstAdversary::new(
            base,
            (2 * window) as u64,
            (10 * window) as u64,
            5,
            2,
        ))
        .seed(1)
        .rounds(rounds)
        .run(&mut [&mut streak]);
    assert!(
        streak.longest < window,
        "conflicts persisted {} ≥ T = {window} rounds",
        streak.longest
    );
}

/// Streaming observer: asserts the covering bound per round against the
/// window's union degree, keeping only an O(window) graph ring.
struct UnionDegreeBound {
    window: GraphWindow,
    check_from: u64,
}

impl RoundObserver<ColorOutput> for UnionDegreeBound {
    fn on_round(&mut self, view: &RoundView<'_, ColorOutput>) {
        self.window.push(view.current_graph());
        if view.round < self.check_from {
            return;
        }
        for (i, o) in view.outputs.iter().enumerate() {
            if let Some(ColorOutput::Colored(c)) = o {
                let bound = self.window.union_degree(NodeId::new(i)) + 1;
                assert!(
                    *c <= bound,
                    "round {}: node {i} has color {c} > d^∪T+1 = {bound}",
                    view.round
                );
            }
        }
    }
}

#[test]
fn colors_stay_within_union_degree_bound_under_heavy_churn() {
    let n = 40;
    let window = recommended_window(n);
    let footprint = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(1, "icol"));
    let rounds = 3 * window;

    let mut bound = UnionDegreeBound {
        window: GraphWindow::new(n, window),
        check_from: (window - 1) as u64,
    };
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.10, 3))
        .seed(2)
        .rounds(rounds)
        .run(&mut [&mut bound]);

    // And the palette never explodes: far fewer colors than n are in use.
    let final_out: Vec<ColorOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    assert!(max_color_used(&final_out) <= footprint.max_degree() + 1);
}

#[test]
fn mobility_workload_keeps_t_dynamic_coloring() {
    let n = 50;
    let window = recommended_window(n);
    let rounds = 3 * window;
    let mut verifier = TDynamicVerifier::new(ColoringProblem, window);
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(MobilityAdversary::new(
            MobilityConfig {
                n,
                radius: 0.22,
                min_speed: 0.002,
                max_speed: 0.012,
            },
            5,
        ))
        .seed(3)
        .rounds(rounds)
        .run(&mut [&mut verifier]);
    let summary = verifier.into_summary();
    assert!(
        summary.all_valid(),
        "invalid rounds: {:?}",
        summary.invalid_rounds
    );
}

#[test]
fn adaptive_conflict_seeking_adversary_cannot_break_validity() {
    // The coloring analysis tolerates even adaptive adversaries; an
    // output-aware adversary that keeps wiring equally-colored nodes together
    // must not be able to make any round's output invalid.
    let n = 36;
    let window = recommended_window(n);
    let footprint = generators::grid(6, 6);
    let adv: ConflictSeekingAdversary<ColorOutput, _> = ConflictSeekingAdversary::new(
        footprint,
        |a: &ColorOutput, b: &ColorOutput| matches!((a, b), (ColorOutput::Colored(x), ColorOutput::Colored(y)) if x == y),
        3,
        0.02,
        (2 * window) as u64,
        7,
    );
    let rounds = 4 * window;
    let mut verifier = TDynamicVerifier::new(ColoringProblem, window);
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(adv)
        .seed(4)
        .rounds(rounds)
        .run(&mut [&mut verifier]);
    let summary = verifier.into_summary();
    assert!(
        summary.all_valid(),
        "invalid rounds: {:?}",
        summary.invalid_rounds
    );
}

#[test]
fn tdma_application_has_collision_free_frames_once_stable() {
    // The motivating application: once the coloring has stabilized on a
    // static network, every TDMA frame is collision free.
    let n = 30;
    let window = recommended_window(n);
    let g = generators::random_geometric(n, 0.3, &mut experiment_rng(2, "tdma"));
    let rounds = 3 * window;
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(StaticAdversary::new(g.clone()))
        .seed(5)
        .rounds(rounds)
        .run(&mut []);
    let out: Vec<ColorOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    let frame = tdma::run_frame(&g, &out);
    assert_eq!(frame.collided, 0);
    assert_eq!(frame.silent, 0);
    assert!(frame.frame_length <= g.max_degree() + 1);
}
