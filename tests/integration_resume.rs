//! Fault-injection harness for the durable trace store and crash-resumable
//! sweeps:
//!
//! 1. **Kill/resume byte-identity** — a sweep killed mid-run (kill switch
//!    after N persisted cells) and resumed from its checkpoint directory
//!    produces the exact same CSV as an uninterrupted run, for both the
//!    serial and the multi-threaded engine.
//! 2. **Mid-cell kill** — a cell that panics partway through its first
//!    attempt is never persisted; resume recomputes it (and only the
//!    missing work) and the output is still byte-identical.
//! 3. **Corruption detection** — a checkpointed cell whose bytes were
//!    flipped on disk is discarded and recomputed on resume (counted by
//!    `store.cells_recomputed`), never silently trusted.
//! 4. **O(1) recorder memory** — a 100k-round trace streamed through
//!    [`DeltaLogRecorder`] keeps its write buffer bounded (independent of
//!    round count) and the log replays to the exact final graph.
//! 5. **Footprint scoping** — shared footprint graphs created inside a
//!    [`generators::FootprintScope`] leave the cache when the scope drops.

use dynnet::graph::codec::replay_log;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::sweep::fold;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynnet-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep under fault injection: 3 sizes × 4 seeds = 12 DColor-under-churn
/// scenarios, each returning its convergence round count.
fn resume_spec() -> SweepSpec<(usize, u64)> {
    SweepSpec::grid2(
        "resume-grid",
        &[24usize, 32, 40],
        &[0u64, 1, 2, 3],
        |&n, &seed| (format!("n={n} seed={seed}"), (n, seed)),
    )
}

fn color_rounds(cell: &Cell<(usize, u64)>) -> f64 {
    let (n, seed) = cell.params;
    let g = generators::erdos_renyi_avg_degree(
        n,
        6.0,
        &mut experiment_rng(seed, &format!("resume-{n}")),
    );
    Scenario::new(n)
        .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
        .adversary(FlipChurnAdversary::new(&g, 0.02, 900 + seed))
        .seed(seed)
        .rounds(200)
        .run_until(&mut [], |view| {
            view.outputs
                .iter()
                .all(|o| o.map(|c: ColorOutput| c.is_decided()).unwrap_or(false))
        })
        .rounds_executed() as f64
}

/// Renders a finished run to the CSV artifact the byte-identity claims are
/// checked against.
fn csv_of(spec: &SweepSpec<(usize, u64)>, run: SweepRun<f64>) -> String {
    let mut agg = fold(
        spec,
        run,
        CellRows::new(
            "resume-grid",
            &["cell", "rounds"],
            |c: &Cell<(usize, u64)>, r: f64| vec![vec![c.label.clone(), format!("{r}")]],
        ),
    );
    let tables = Aggregator::<(usize, u64), f64>::finish(&mut agg);
    tables[0].to_csv()
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical() {
    let spec = resume_spec();
    let oneshot = csv_of(&spec, SweepEngine::new(2).run(&spec, color_rounds).unwrap());

    for threads in [1usize, 4] {
        let dir = tmp_dir(&format!("kill-{threads}"));
        let engine = SweepEngine::new(threads);
        let store = CheckpointStore::create(&dir)
            .unwrap()
            .with_kill_switch(KillSwitch::after(4));
        let err = engine
            .run_checkpointed(&spec, &store, color_rounds)
            .expect_err("kill switch must cancel the sweep");
        assert!(
            err.message.contains("kill switch"),
            "threads={threads}: unexpected failure: {err}"
        );
        assert!(store.cells_persisted() >= 4);

        let resumed: SweepRun<f64> = engine.resume_from(&spec, &dir, color_rounds).unwrap();
        // Only the non-durable cells ran on resume.
        assert!(
            resumed.report().cells <= spec.len() - 4,
            "threads={threads}: resume re-ran checkpointed cells"
        );
        assert_eq!(
            csv_of(&spec, resumed),
            oneshot,
            "threads={threads}: resumed CSV differs from uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn mid_cell_kill_recomputes_only_the_unfinished_work() {
    let spec = resume_spec();
    let oneshot = csv_of(&spec, SweepEngine::new(2).run(&spec, color_rounds).unwrap());
    let dir = tmp_dir("mid-cell");
    let engine = SweepEngine::new(4);
    let store = CheckpointStore::create(&dir).unwrap();

    // Cell 5 dies partway through its first attempt — after doing real
    // work, before any result reaches the store.
    let tripped = AtomicBool::new(false);
    let err = engine
        .run_checkpointed(&spec, &store, |cell: &Cell<(usize, u64)>| {
            let r = color_rounds(cell);
            if cell.index == 5 && !tripped.swap(true, Ordering::SeqCst) {
                panic!("simulated crash inside cell 5");
            }
            r
        })
        .expect_err("mid-cell panic must cancel the sweep");
    assert_eq!(err.cell_index, 5);
    assert!(
        !store.cell_file_exists(5),
        "dead cell must not be persisted"
    );

    let persisted = store.cells_persisted() as usize;
    let resumed: SweepRun<f64> = engine.resume_from(&spec, &dir, color_rounds).unwrap();
    assert_eq!(resumed.report().cells, spec.len() - persisted);
    assert_eq!(csv_of(&spec, resumed), oneshot);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_cell_is_discarded_and_recomputed() {
    let spec = resume_spec();
    let engine = SweepEngine::new(1);
    let oneshot = csv_of(&spec, engine.run(&spec, color_rounds).unwrap());
    let dir = tmp_dir("corrupt");
    let store = CheckpointStore::create(&dir).unwrap();
    engine
        .run_checkpointed(&spec, &store, color_rounds)
        .unwrap();

    // Flip one payload byte of a checkpointed cell on disk.
    let cell_path = dir.join("cells").join("7.cell");
    let mut bytes = std::fs::read(&cell_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&cell_path, &bytes).unwrap();

    let recomputed_before = dynnet::obs::registry()
        .counter("store.cells_recomputed")
        .get();
    let resumed: SweepRun<f64> = engine.resume_from(&spec, &dir, color_rounds).unwrap();
    // The corrupt cell was rejected and re-run — never silently trusted —
    // and the healed output still matches the uninterrupted run exactly.
    assert_eq!(resumed.report().cells, 1, "exactly the corrupt cell re-ran");
    assert!(
        dynnet::obs::registry()
            .counter("store.cells_recomputed")
            .get()
            > recomputed_before,
        "corruption must be counted as a recompute"
    );
    assert_eq!(csv_of(&spec, resumed), oneshot);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn delta_log_recorder_memory_is_bounded_and_replays() {
    let rounds = 100_000usize;
    let n = 16;
    let path = std::env::temp_dir().join(format!("dynnet-resume-{}.dlog", std::process::id()));
    let g = generators::erdos_renyi_avg_degree(n, 4.0, &mut experiment_rng(11, "dlog"));
    let mut recorder = DeltaLogRecorder::create(&path);
    Scenario::new(n)
        .algorithm(|v: NodeId| DColor::new(v, ColorOutput::Undecided))
        .adversary(FlipChurnAdversary::new(&g, 0.2, 77))
        .seed(11)
        .rounds(rounds)
        .run(&mut [&mut recorder]);
    assert_eq!(recorder.num_rounds() as usize, rounds);

    // O(1) in rounds: the recorder streams to disk through a fixed-size
    // buffer — the high-water mark is the flush threshold plus at most one
    // record, not a function of the 100k-round horizon.
    let stats = recorder.stats().expect("log was opened");
    assert_eq!(stats.records as usize, rounds);
    assert!(
        stats.max_buffered <= 64 * 1024 + 4096,
        "write buffer grew with the trace: {} bytes",
        stats.max_buffered
    );
    assert!(
        stats.bytes_written > 64 * 1024,
        "trace should span many buffer flushes"
    );

    let final_graph = recorder
        .final_graph()
        .expect("final graph after 100k rounds")
        .clone();
    recorder.close().unwrap();
    // The on-disk log replays to the exact final graph.
    assert_eq!(replay_log(&path).unwrap(), final_graph);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn footprint_scope_empties_cache_after_multi_family_grid() {
    let scope = generators::FootprintScope::new();
    for n in [16usize, 24] {
        for family in [
            generators::GraphFamily::ErdosRenyi { avg_degree: 4.0 },
            generators::GraphFamily::Geometric { radius: 0.4 },
        ] {
            for seed in 0..3u64 {
                let _ = generators::shared_footprint(&family, n, seed, "scope-test", || {
                    family.generate(n, &mut experiment_rng(seed, "scope-test"))
                });
            }
        }
    }
    assert!(
        generators::footprint_cache_scoped_len() > 0,
        "grid should populate the footprint cache"
    );
    drop(scope);
    assert_eq!(
        generators::footprint_cache_scoped_len(),
        0,
        "dropping the scope must release every scoped footprint"
    );
}
