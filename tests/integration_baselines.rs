//! Integration tests comparing the paper's combined algorithms against the
//! restart-from-scratch strawman on identical adversarial schedules — the
//! motivation laid out in the paper's introduction: an algorithm that relies
//! on a quiet recovery period loses its guarantees in a highly dynamic
//! network, and even on a static network it keeps churning its output.

use dynnet::core::output_churn_series;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

fn churn_of<O: Clone + PartialEq>(record: &ExecutionRecord<O>, n: usize, from: usize) -> usize {
    let outputs: Vec<Vec<Option<O>>> = (0..record.num_rounds())
        .map(|r| record.outputs_at(r).to_vec())
        .collect();
    let nodes: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    output_churn_series(&outputs, &nodes)[from..].iter().sum()
}

#[test]
fn combined_coloring_churns_less_than_restart_baseline() {
    let n = 40;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "base"));

    // Record a schedule with mild churn using the combined algorithm.
    let mut adv = FlipChurnAdversary::new(&footprint, 0.01, 5);
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(1));
    let record_combined = run(&mut sim, &mut adv, rounds);

    // Replay the identical schedule for the restart baseline.
    let mut replay = ScriptedAdversary::new(record_combined.trace.clone());
    let period = window as u64;
    let mut sim = Simulator::new(
        n,
        move |v: NodeId| RestartColoring::new(v, period),
        AllAtStart,
        SimConfig::sequential(2),
    );
    let record_restart = run(&mut sim, &mut replay, rounds);

    // Compare steady-state output churn (after the first 2T warm-up rounds).
    let churn_combined = churn_of(&record_combined, n, 2 * window);
    let churn_restart = churn_of(&record_restart, n, 2 * window);
    assert!(
        churn_restart > 3 * churn_combined.max(1),
        "restart churn {churn_restart} should dwarf combined churn {churn_combined}"
    );
}

#[test]
fn combined_mis_is_valid_in_far_more_rounds_than_restart_baseline() {
    let n = 40;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(2, "base2"));

    let mut adv = FlipChurnAdversary::new(&footprint, 0.02, 7);
    let mut sim = Simulator::new(n, dynamic_mis(n, window), AllAtStart, SimConfig::sequential(3));
    let record_combined = run(&mut sim, &mut adv, rounds);
    let graphs: Vec<Graph> = record_combined.trace.iter().collect();
    let outputs: Vec<Vec<Option<MisOutput>>> = (0..rounds)
        .map(|r| record_combined.outputs_at(r).to_vec())
        .collect();
    let combined_summary =
        verify_t_dynamic_run(&MisProblem, &graphs, &outputs, window, window - 1);

    let mut replay = ScriptedAdversary::new(record_combined.trace.clone());
    let period = window as u64;
    let mut sim = Simulator::new(
        n,
        move |v: NodeId| RestartMis::new(v, period),
        AllAtStart,
        SimConfig::sequential(4),
    );
    let record_restart = run(&mut sim, &mut replay, rounds);
    let outputs_restart: Vec<Vec<Option<MisOutput>>> = (0..rounds)
        .map(|r| record_restart.outputs_at(r).to_vec())
        .collect();
    let restart_summary =
        verify_t_dynamic_run(&MisProblem, &graphs, &outputs_restart, window, window - 1);

    assert!(combined_summary.all_valid());
    // Every restart forces a stretch of rounds with undecided nodes, so the
    // baseline cannot be valid in all rounds; the combined algorithm is.
    assert!(
        !restart_summary.all_valid(),
        "the restart baseline should have invalid rounds"
    );
    assert!(
        restart_summary.invalid_rounds.len() >= 3,
        "each of the ~5 restarts should cost at least one invalid round, got {:?}",
        restart_summary.invalid_rounds
    );
    assert!(restart_summary.valid_fraction() < combined_summary.valid_fraction());
}

#[test]
fn combined_coloring_uses_comparable_number_of_colors_to_the_oracle() {
    // Quality check: the distributed dynamic coloring should not use wildly
    // more colors than the centralized greedy oracle on the same snapshot.
    let n = 60;
    let window = recommended_window(n);
    let g = generators::random_geometric(n, 0.25, &mut experiment_rng(3, "base3"));
    let mut adv = StaticAdversary::new(g.clone());
    let mut sim = Simulator::new(n, dynamic_coloring(window), AllAtStart, SimConfig::sequential(5));
    let rounds = 3 * window;
    let record = run(&mut sim, &mut adv, rounds);
    let out: Vec<ColorOutput> = record
        .outputs_at(rounds - 1)
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    let oracle = oracle_coloring(&g);
    let distributed_colors = dynnet::core::coloring::max_color_used(&out);
    let oracle_colors = dynnet::core::coloring::max_color_used(&oracle);
    assert!(distributed_colors <= g.max_degree() + 1);
    assert!(
        distributed_colors <= 3 * oracle_colors + 2,
        "distributed {distributed_colors} vs oracle {oracle_colors}"
    );
}
