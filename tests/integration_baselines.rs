//! Integration tests comparing the paper's combined algorithms against the
//! restart-from-scratch strawman on identical adversarial schedules — the
//! motivation laid out in the paper's introduction: an algorithm that relies
//! on a quiet recovery period loses its guarantees in a highly dynamic
//! network, and even on a static network it keeps churning its output.
//! Driven through the `Scenario` API with streaming observers.

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;

#[test]
fn combined_coloring_churns_less_than_restart_baseline() {
    let n = 40;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(1, "base"));

    // Record a schedule with mild churn using the combined algorithm.
    let mut combined_churn = ChurnStats::new();
    let mut recorder = TraceRecorder::graphs_only();
    Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.01, 5))
        .seed(1)
        .rounds(rounds)
        .run(&mut [&mut combined_churn, &mut recorder]);

    // Replay the identical schedule for the restart baseline.
    let period = window as u64;
    let mut restart_churn = ChurnStats::new();
    Scenario::new(n)
        .algorithm(move |v: NodeId| RestartColoring::new(v, period))
        .adversary(ScriptedAdversary::new(
            recorder.into_trace().expect("recorded trace"),
        ))
        .seed(2)
        .rounds(rounds)
        .run(&mut [&mut restart_churn]);

    // Compare steady-state output churn (after the first 2T warm-up rounds).
    let churn_combined = combined_churn.total_from(2 * window);
    let churn_restart = restart_churn.total_from(2 * window);
    assert!(
        churn_restart > 2 * churn_combined.max(1),
        "restart churn {churn_restart} should dwarf combined churn {churn_combined}"
    );
}

#[test]
fn combined_mis_is_valid_in_far_more_rounds_than_restart_baseline() {
    let n = 40;
    let window = recommended_window(n);
    let rounds = 6 * window;
    let footprint = generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(2, "base2"));

    let mut combined_verifier = TDynamicVerifier::new(MisProblem, window);
    let mut recorder = TraceRecorder::graphs_only();
    Scenario::new(n)
        .algorithm(dynamic_mis(n, window))
        .adversary(FlipChurnAdversary::new(&footprint, 0.02, 7))
        .seed(3)
        .rounds(rounds)
        .run(&mut [&mut combined_verifier, &mut recorder]);
    let combined_summary = combined_verifier.into_summary();

    let period = window as u64;
    let mut restart_verifier = TDynamicVerifier::new(MisProblem, window);
    Scenario::new(n)
        .algorithm(move |v: NodeId| RestartMis::new(v, period))
        .adversary(ScriptedAdversary::new(
            recorder.into_trace().expect("recorded trace"),
        ))
        .seed(4)
        .rounds(rounds)
        .run(&mut [&mut restart_verifier]);
    let restart_summary = restart_verifier.into_summary();

    assert!(combined_summary.all_valid());
    // Every restart forces a stretch of rounds with undecided nodes, so the
    // baseline cannot be valid in all rounds; the combined algorithm is.
    assert!(
        !restart_summary.all_valid(),
        "the restart baseline should have invalid rounds"
    );
    assert!(
        restart_summary.invalid_rounds.len() >= 3,
        "each of the ~5 restarts should cost at least one invalid round, got {:?}",
        restart_summary.invalid_rounds
    );
    assert!(restart_summary.valid_fraction() < combined_summary.valid_fraction());
}

#[test]
fn combined_coloring_uses_comparable_number_of_colors_to_the_oracle() {
    // Quality check: the distributed dynamic coloring should not use wildly
    // more colors than the centralized greedy oracle on the same snapshot.
    let n = 60;
    let window = recommended_window(n);
    let g = generators::random_geometric(n, 0.25, &mut experiment_rng(3, "base3"));
    let rounds = 3 * window;
    let runner = Scenario::new(n)
        .algorithm(dynamic_coloring(window))
        .adversary(StaticAdversary::new(g.clone()))
        .seed(5)
        .rounds(rounds)
        .run(&mut []);
    let out: Vec<ColorOutput> = runner
        .outputs()
        .iter()
        .map(|o| o.unwrap_or(ColorOutput::Undecided))
        .collect();
    let oracle = oracle_coloring(&g);
    let distributed_colors = dynnet::core::coloring::max_color_used(&out);
    let oracle_colors = dynnet::core::coloring::max_color_used(&oracle);
    assert!(distributed_colors <= g.max_degree() + 1);
    assert!(
        distributed_colors <= 3 * oracle_colors + 2,
        "distributed {distributed_colors} vs oracle {oracle_colors}"
    );
}
