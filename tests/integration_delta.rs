//! Integration tests for the delta-native round pipeline.
//!
//! The pipeline's contract is: for every adversary, the incremental path
//! (adversary emits a `GraphDelta`, the runner patches one persistent
//! `Graph`, the simulator patches one persistent effective CSR) produces
//! **exactly** the execution the legacy whole-graph path produced — same
//! effective graph snapshot and same outputs every round — while performing
//! zero `Graph` clones and zero full CSR rebuilds in steady state.

use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use dynnet::runtime::{Incoming, NodeContext, ScriptedWakeup};

/// Flooding: every node outputs the maximum id heard so far. Output type is
/// `u32`, which also serves as the conflict predicate input for the adaptive
/// adversary.
#[derive(Clone)]
struct MaxFlood(u32);

impl NodeAlgorithm for MaxFlood {
    type Msg = u32;
    type Output = u32;
    fn send(&mut self, _ctx: &mut NodeContext<'_>) -> u32 {
        self.0
    }
    fn receive(&mut self, _ctx: &mut NodeContext<'_>, inbox: &[Incoming<u32>]) {
        for (_, m) in inbox {
            self.0 = self.0.max(*m);
        }
    }
    fn output(&self) -> u32 {
        self.0
    }
}

fn flood(v: NodeId) -> MaxFlood {
    MaxFlood(v.0)
}

/// Runs `rounds` rounds of the same (adversary, wake-up, seed) execution
/// twice — once through the legacy whole-graph path (`next_graph` +
/// `step_streaming`, full CSR rebuild every round) and once through the
/// delta path (`next_delta` + `step_delta`, incremental CSR) — and asserts
/// that after every round the incremental effective CSR equals the CSR built
/// from scratch from the materialized graph, and that the outputs agree.
fn assert_delta_path_equivalent<Adv, W>(
    name: &str,
    make_adversary: impl Fn() -> Adv,
    wakeup: W,
    rounds: usize,
    parallel: bool,
) where
    Adv: OutputAdversary<u32>,
    W: WakeupSchedule + Clone,
{
    let config = SimConfig {
        seed: 11,
        parallel,
        parallel_threshold: 0,
        ..SimConfig::default()
    };

    // Reference execution: whole graphs, CSR rebuilt from scratch per round.
    let mut ref_adv = make_adversary();
    let mut ref_graph = ref_adv.initial_graph();
    let n = ref_graph.num_nodes();
    let mut ref_sim = Simulator::new(n, flood, wakeup.clone(), config.clone());
    let mut ref_csrs = Vec::new();
    let mut ref_outputs = Vec::new();
    for r in 0..rounds as u64 {
        if r > 0 {
            ref_graph = ref_adv.next_graph(r, &ref_graph, ref_sim.outputs());
        }
        let summary = ref_sim.step_streaming(&ref_graph);
        ref_csrs.push(summary.graph);
        ref_outputs.push(ref_sim.outputs().to_vec());
    }

    // Delta execution: one persistent graph patched per round, incremental
    // effective CSR.
    let mut adv = make_adversary();
    let mut sim = Simulator::new(n, flood, wakeup, config);
    let mut graph = adv.initial_graph();
    for r in 0..rounds as u64 {
        let summary = if r == 0 {
            sim.step_streaming(&graph)
        } else {
            let delta = adv.next_delta(r, &graph, sim.outputs());
            delta.apply(&mut graph);
            sim.step_delta(&graph, &delta)
        };
        assert_eq!(
            *summary.graph, *ref_csrs[r as usize],
            "{name}: incremental CSR diverged from the from-scratch CSR in round {r}"
        );
        assert_eq!(
            sim.outputs(),
            &ref_outputs[r as usize][..],
            "{name}: outputs diverged in round {r}"
        );
    }
    // Every round after round 0 must have been served by the incremental
    // path (the adversaries in this test are sparse per round).
    let stats = sim.delta_stats();
    assert_eq!(
        stats.full_csr_builds + stats.rounds_patched,
        rounds,
        "{name}: every round is either a build or a patch"
    );
}

fn footprint(n: usize, tag: &str) -> Graph {
    generators::erdos_renyi_avg_degree(n, 5.0, &mut experiment_rng(3, tag))
}

/// Staggered wake-up over the first half of the run, plus one node that
/// wakes very late — exercises the pending-sleepers pruning on both paths.
fn late_wakeup(n: usize, rounds: usize) -> ScriptedWakeup {
    let mut rounds_per_node: Vec<u64> = (0..n).map(|i| (i as u64) % (rounds as u64 / 2)).collect();
    rounds_per_node[n - 1] = rounds as u64 - 2;
    ScriptedWakeup {
        rounds: rounds_per_node,
    }
}

#[test]
fn delta_equivalence_all_adversaries_sequential_and_parallel() {
    let n = 48;
    let rounds = 40;
    for parallel in [false, true] {
        assert_delta_path_equivalent(
            "flip-churn",
            || FlipChurnAdversary::new(&footprint(n, "flip"), 0.05, 21),
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "markov-churn",
            || MarkovChurnAdversary::new(&footprint(n, "markov"), 0.2, 0.3, false, 22),
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "rate-churn",
            || RateChurnAdversary::new(footprint(n, "rate"), 3, 2, 23),
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "burst",
            || BurstAdversary::new(footprint(n, "burst"), 5, 3, 4, 24),
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "mobility",
            || {
                MobilityAdversary::new(
                    MobilityConfig {
                        n,
                        radius: 0.25,
                        min_speed: 0.01,
                        max_speed: 0.05,
                    },
                    25,
                )
            },
            AllAtStart,
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "node-churn",
            || NodeChurnAdversary::new(footprint(n, "nodes"), 0.1, 0.3, 26),
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "growth",
            || GrowthAdversary::new(footprint(n, "growth"), 2, 3),
            AllAtStart,
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "locally-static",
            || {
                LocallyStaticAdversary::new(
                    generators::grid(8, 6),
                    vec![NodeId::new(20)],
                    2,
                    0.3,
                    27,
                )
            },
            AllAtStart,
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "static",
            || StaticAdversary::new(footprint(n, "static")),
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "scripted",
            || {
                let mut flip = FlipChurnAdversary::new(&footprint(n, "script"), 0.08, 28);
                let mut trace =
                    dynnet::graph::DynamicGraphTrace::new(Adversary::initial_graph(&mut flip));
                let mut g = trace.graph_at(0);
                for r in 1..(rounds as u64 - 5) {
                    let d = Adversary::next_delta(&mut flip, r, &g);
                    d.apply(&mut g);
                    trace.push_delta(d);
                }
                ScriptedAdversary::new(trace)
            },
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "phase",
            || {
                PhaseAdversary::new(vec![
                    (10, Box::new(StaticAdversary::new(footprint(n, "p0")))),
                    (
                        10,
                        Box::new(FlipChurnAdversary::new(&footprint(n, "p1"), 0.05, 29)),
                    ),
                    (10, Box::new(StaticAdversary::new(footprint(n, "p2")))),
                ])
            },
            AllAtStart,
            rounds,
            parallel,
        );
        assert_delta_path_equivalent(
            "conflict-seeking",
            || {
                ConflictSeekingAdversary::new(
                    footprint(n, "adaptive"),
                    |a: &u32, b: &u32| a == b,
                    4,
                    0.03,
                    6,
                    30,
                )
            },
            late_wakeup(n, rounds),
            rounds,
            parallel,
        );
    }
}

/// A 10k-node, ~0.1%-churn-per-round scenario: in steady state the
/// incremental path performs zero full `Graph` clones and zero full CSR
/// rebuilds — round 0 is the only full build, every other round is a patch.
#[test]
fn steady_state_churn_is_all_patches_at_10k_nodes() {
    let n = 10_000;
    let rounds = 40;
    // ~4 · 10^4 footprint edges; flip probability 0.001 ⇒ ~0.1% of the
    // edges change per round.
    let fp = generators::erdos_renyi_avg_degree(n, 8.0, &mut experiment_rng(5, "steady"));
    let mut churn = ChurnStats::new();
    let runner = Scenario::new(n)
        .algorithm(flood)
        .adversary(FlipChurnAdversary::new(&fp, 0.001, 31))
        .seed(9)
        .rounds(rounds)
        .run(&mut [&mut churn]);
    let stats = runner.sim().delta_stats();
    assert_eq!(
        stats.full_csr_builds, 1,
        "only round 0 may build the CSR from scratch, got {stats:?}"
    );
    assert_eq!(stats.rounds_patched, rounds - 1, "{stats:?}");
    assert_eq!(
        stats.cow_clones, 0,
        "no observer retained a snapshot, so no copy-on-write may occur"
    );
    assert_eq!(churn.series().len(), rounds);
}

/// An observer that retains the round's snapshot `Arc` forces exactly one
/// copy-on-write clone per retained round — and the execution stays correct.
#[test]
fn retained_snapshots_trigger_copy_on_write() {
    struct Retainer {
        kept: Vec<std::sync::Arc<CsrGraph>>,
    }
    impl RoundObserver<u32> for Retainer {
        fn on_round(&mut self, view: &RoundView<'_, u32>) {
            if view.round.is_multiple_of(2) {
                self.kept.push(std::sync::Arc::clone(view.graph));
            }
        }
    }
    let n = 32;
    let fp = footprint(n, "cow");
    let mut retainer = Retainer { kept: Vec::new() };
    let runner = Scenario::new(n)
        .algorithm(flood)
        .adversary(FlipChurnAdversary::new(&fp, 0.05, 33))
        .rounds(20)
        .run(&mut [&mut retainer]);
    let stats = runner.sim().delta_stats();
    assert!(stats.cow_clones > 0, "retention must force CoW: {stats:?}");
    // Retained snapshots stay frozen at their round: each must equal the
    // CSR rebuilt from its own recorded edge set (internal consistency).
    for csr in &retainer.kept {
        assert_eq!(**csr, CsrGraph::from_graph(&csr.to_graph()));
    }
}

/// The trace a `TraceRecorder` assembles from handed deltas reconstructs
/// exactly the per-round effective graphs of the whole-graph path.
#[test]
fn recorded_delta_trace_matches_whole_graph_replay() {
    let n = 40;
    let rounds = 25;
    let fp = footprint(n, "trace");
    let wake = late_wakeup(n, rounds);

    let mut recorder = TraceRecorder::new();
    Scenario::new(n)
        .algorithm(flood)
        .adversary(MarkovChurnAdversary::new(&fp, 0.3, 0.2, true, 41))
        .wakeup(wake.clone())
        .seed(2)
        .rounds(rounds)
        .run(&mut [&mut recorder]);
    let record = recorder.into_record();

    // Reference: same execution through the legacy shim (whole-graph path).
    let mut sim = Simulator::new(n, flood, wake, SimConfig::sequential(2));
    let mut adv = MarkovChurnAdversary::new(&fp, 0.3, 0.2, true, 41);
    let legacy = run(&mut sim, &mut adv, rounds);

    assert_eq!(record.num_rounds(), legacy.num_rounds());
    for r in 0..rounds {
        assert_eq!(
            record.graph_at(r),
            legacy.graph_at(r),
            "effective graph of round {r}"
        );
        assert_eq!(record.outputs_at(r), legacy.outputs_at(r), "round {r}");
    }
}
