//! End-to-end tests for the `dynnet-obs` observability layer.
//!
//! Everything lives in ONE `#[test]` function: span recording is
//! process-global state (`set_enabled` / the shared trace buffer), so
//! concurrent test threads would observe each other's events. The sections
//! run sequentially:
//!
//! 1. **Determinism pin** — every built-in adversary (all 12) drives both
//!    combined algorithms (coloring and MIS) twice, once with tracing on and
//!    once with it off; the output vectors must be identical. Tracing is
//!    observational only and must never perturb the simulation.
//! 2. **CSV determinism** — a small sweep's CSV artifact is byte-identical
//!    with tracing on and off.
//! 3. **Overhead guard** — with tracing disabled, spans record nothing (the
//!    buffer stays empty) and the worker pool does exactly the same work
//!    (identical `tasks_pooled` deltas) as a traced run of the same
//!    scenario.
//! 4. **Artifact round-trip** — a 2k-node traced run exports a Chrome trace
//!    and a metrics JSONL which both pass the `obs` validators.
//! 5. **Span coverage** — a traced 100k-node DMis round's phase spans sum to
//!    within 10% of the measured round latency: the taxonomy covers the
//!    round path, with no large untimed gap.

use dynnet::graph::DynamicGraphTrace;
use dynnet::obs;
use dynnet::prelude::*;
use dynnet::runtime::rng::experiment_rng;
use std::path::PathBuf;
use std::time::Instant;

const N: usize = 24;
const WINDOW: usize = 6;
const ROUNDS: usize = 4 * WINDOW + 8;

fn footprint(seed: u64) -> Graph {
    generators::erdos_renyi_avg_degree(N, 4.0, &mut experiment_rng(seed, "obs-it"))
}

/// A pre-recorded flip-churn schedule, so the scripted adversary replays a
/// genuinely dynamic trace.
fn scripted() -> ScriptedAdversary {
    let mut churn = FlipChurnAdversary::new(&footprint(2), 0.05, 3);
    let g0 = Adversary::initial_graph(&mut churn);
    let mut trace = DynamicGraphTrace::new(g0.clone());
    let mut g = g0;
    for r in 1..ROUNDS as u64 {
        let d = Adversary::next_delta(&mut churn, r, &g);
        d.apply(&mut g);
        trace.push_delta(d);
    }
    ScriptedAdversary::new(trace)
}

/// All 12 built-in adversaries under one output type. The oblivious ones
/// come in through the blanket `Adversary → OutputAdversary` impl; the
/// conflict-seeking one needs the problem-specific conflict predicate.
fn roster<O: Sync + 'static>(
    conflict: fn(&O, &O) -> bool,
) -> Vec<(&'static str, Box<dyn OutputAdversary<O>>)> {
    let w = WINDOW;
    vec![
        ("static", Box::new(StaticAdversary::new(footprint(1)))),
        ("scripted", Box::new(scripted())),
        (
            "phase",
            Box::new(PhaseAdversary::new(vec![
                (
                    0,
                    Box::new(StaticAdversary::new(footprint(4))) as Box<dyn Adversary>,
                ),
                (6, Box::new(FlipChurnAdversary::new(&footprint(4), 0.08, 5))),
                (
                    (2 * w + 4) as u64,
                    Box::new(RateChurnAdversary::new(footprint(4), 2, 2, 6)),
                ),
            ])),
        ),
        (
            "markov",
            Box::new(MarkovChurnAdversary::new(&footprint(7), 0.1, 0.1, true, 8)),
        ),
        (
            "flip",
            Box::new(FlipChurnAdversary::new(&footprint(9), 0.08, 10)),
        ),
        (
            "rate",
            Box::new(RateChurnAdversary::new(footprint(11), 3, 3, 12)),
        ),
        (
            "burst",
            Box::new(BurstAdversary::new(
                footprint(13),
                (w + 2) as u64,
                (w / 2 + 1) as u64,
                4,
                14,
            )),
        ),
        (
            "node-churn",
            Box::new(NodeChurnAdversary::new(footprint(15), 0.05, 0.2, 16)),
        ),
        (
            "growth",
            Box::new(GrowthAdversary::new(footprint(17), 6, 2)),
        ),
        (
            "mobility",
            Box::new(MobilityAdversary::new(
                MobilityConfig {
                    n: N,
                    radius: 0.3,
                    ..Default::default()
                },
                18,
            )),
        ),
        (
            "locally-static",
            Box::new(LocallyStaticAdversary::new(
                footprint(19),
                vec![NodeId::new(0)],
                2,
                0.2,
                20,
            )),
        ),
        (
            "conflict-seeking",
            Box::new(ConflictSeekingAdversary::new(
                footprint(21),
                conflict,
                3,
                0.05,
                (2 * w) as u64,
                22,
            )),
        ),
    ]
}

fn coloring_conflict(a: &ColorOutput, b: &ColorOutput) -> bool {
    matches!((a, b), (ColorOutput::Colored(x), ColorOutput::Colored(y)) if x == y)
}

fn mis_conflict(a: &MisOutput, b: &MisOutput) -> bool {
    matches!((a, b), (MisOutput::InMis, MisOutput::InMis))
}

/// Runs the full roster against the combined coloring algorithm and returns
/// each adversary's final output vector.
fn coloring_outputs(traced: bool) -> Vec<(&'static str, Vec<Option<ColorOutput>>)> {
    obs::set_enabled(traced);
    roster(coloring_conflict)
        .into_iter()
        .map(|(name, adv)| {
            let runner = Scenario::new(N)
                .algorithm(dynamic_coloring(WINDOW))
                .adversary(adv)
                .seed(11)
                .rounds(ROUNDS)
                .run(&mut []);
            (name, runner.outputs().to_vec())
        })
        .collect()
}

/// Runs the full roster against the combined MIS algorithm and returns each
/// adversary's final output vector.
fn mis_outputs(traced: bool) -> Vec<(&'static str, Vec<Option<MisOutput>>)> {
    obs::set_enabled(traced);
    roster(mis_conflict)
        .into_iter()
        .map(|(name, adv)| {
            let runner = Scenario::new(N)
                .algorithm(dynamic_mis(N, WINDOW))
                .adversary(adv)
                .seed(11)
                .rounds(ROUNDS)
                .run(&mut []);
            (name, runner.outputs().to_vec())
        })
        .collect()
}

/// A tiny sweep whose CSV artifact must not depend on the trace state.
fn sweep_csv(traced: bool) -> String {
    obs::set_enabled(traced);
    let seeds: Vec<u64> = vec![1, 2, 3];
    let spec = SweepSpec::grid1("obs-csv", &seeds, |&s| (format!("seed={s}"), s));
    let results = SweepEngine::new(1)
        .run(&spec, |cell| {
            let n = 64;
            let s = cell.params;
            let fp = generators::erdos_renyi_avg_degree(n, 4.0, &mut experiment_rng(s, "obs-csv"));
            let runner = Scenario::new(n)
                .algorithm(dynamic_mis(n, WINDOW))
                .adversary(FlipChurnAdversary::new(&fp, 0.05, s))
                .seed(s)
                .rounds(20)
                .run(&mut []);
            runner
                .outputs()
                .iter()
                .filter(|o| matches!(o, Some(MisOutput::InMis)))
                .count()
        })
        .expect("sweep")
        .into_results();
    let mut table = Table::new("obs-csv", &["seed", "mis_size"]);
    for (s, r) in seeds.iter().zip(&results) {
        table.push_row(vec![s.to_string(), r.to_string()]);
    }
    table.to_csv()
}

/// One parallel-executor scenario; returns (outputs, pooled-task delta).
fn pooled_run(traced: bool) -> (Vec<Option<MisOutput>>, u64) {
    obs::set_enabled(traced);
    let n = 2_000;
    let fp = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(33, "obs-pool"));
    let before = rayon_tasks_pooled();
    let runner = Scenario::new(n)
        .algorithm(dynamic_mis(n, WINDOW))
        .adversary(FlipChurnAdversary::new(&fp, 0.02, 33))
        .seed(33)
        .parallel(true)
        .parallel_threshold(0)
        .rounds(10)
        .run(&mut []);
    (runner.outputs().to_vec(), rayon_tasks_pooled() - before)
}

/// The unified registry exposes the pool counters after any run with a
/// `MetricsObserver`; read the raw pool stat here so the guard does not
/// depend on an observer being attached.
fn rayon_tasks_pooled() -> u64 {
    rayon::pool_stats().tasks_pooled
}

fn artifacts_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("obs-it");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

/// Traced 2k-node run with the metrics observer and verifier attached;
/// exports both artifacts and validates them.
fn artifact_round_trip() {
    obs::registry().reset();
    obs::set_enabled(true);
    let _ = obs::take_events();
    let n = 2_000;
    let fp = generators::erdos_renyi_avg_degree(n, 6.0, &mut experiment_rng(44, "obs-art"));
    let mut metrics = MetricsObserver::new();
    let mut verifier = TDynamicVerifier::new(MisProblem, WINDOW);
    let runner = Scenario::new(n)
        .algorithm(dynamic_mis(n, WINDOW))
        .adversary(FlipChurnAdversary::new(&fp, 0.02, 44))
        .seed(44)
        .rounds(2 * WINDOW)
        .run(&mut [&mut metrics, &mut verifier]);
    assert!(runner.outputs().iter().any(|o| o.is_some()));
    obs::set_enabled(false);

    let dir = artifacts_dir();

    // Chrome trace: every recorded span round-trips through the validator.
    let events = obs::take_events();
    assert!(!events.is_empty(), "a traced run must record spans");
    let trace_path = dir.join("trace.json");
    obs::write_chrome_trace(&trace_path, &events).expect("write chrome trace");
    let text = std::fs::read_to_string(&trace_path).expect("read chrome trace");
    let report = obs::validate_chrome_trace(&text).expect("chrome trace validates");
    assert_eq!(report.events, events.len());
    assert!(report.categories.contains("round"), "round spans present");
    assert!(
        report.categories.contains("verify"),
        "verifier spans present"
    );

    // Metrics JSONL: registry counters plus the verifier's pull-model
    // metrics, written twice so the per-scope seq check has work to do.
    let metrics_path = dir.join("metrics.jsonl");
    let mut writer = obs::JsonlWriter::create(&metrics_path, "obs-it").expect("create jsonl");
    let mut snap = obs::registry().snapshot();
    snap.collect_from(&verifier);
    writer.write(&snap).expect("write snapshot");
    writer.write(&snap).expect("write snapshot again");
    let text = std::fs::read_to_string(&metrics_path).expect("read jsonl");
    let report = obs::validate_metrics_jsonl(&text).expect("metrics jsonl validates");
    assert_eq!(report.lines, 2);
    assert!(report.scopes.contains("obs-it"));
    for metric in [
        "sim.rounds",
        "sim.output_churn",
        "verify.rounds_checked",
        "window.gc_queue_depth",
        "pool.budget",
    ] {
        assert!(
            snap.get(metric).is_some(),
            "metric '{metric}' missing from snapshot"
        );
    }
    assert_eq!(snap.get("sim.rounds"), Some(2 * WINDOW as u64));
}

/// Traced 100k-node DMis round: the phase spans must account for at least
/// 90% of the measured wall-clock of the round (and never exceed it).
fn span_coverage_100k() {
    let n = 100_000;
    let mut churn = FlipChurnAdversary::new(
        &generators::erdos_renyi_avg_degree(n, 4.0, &mut experiment_rng(55, "obs-cov")),
        0.005,
        55,
    );
    let mut g = Adversary::initial_graph(&mut churn);
    let config = SimConfig {
        seed: 55,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(
        n,
        |v: NodeId| DMis::new(v, MisOutput::Undecided),
        AllAtStart,
        config,
    );
    // Warm round (full CSR build) stays untraced.
    obs::set_enabled(false);
    sim.step_streaming(&g);

    let mut last_ratio = 0.0f64;
    for round in 1..=3u64 {
        let d = Adversary::next_delta(&mut churn, round, &g);
        d.apply(&mut g);
        obs::set_enabled(true);
        let _ = obs::take_events();
        // TIMING: measures the traced round the spans must account for;
        // test-only, never feeds back into the simulation.
        let start = Instant::now();
        sim.step_delta(&g, &d);
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        obs::set_enabled(false);
        let events = obs::take_events();
        let span_ns: u64 = events
            .iter()
            .filter(|e| e.cat == "round")
            .map(|e| e.dur_ns)
            .sum();
        assert!(
            span_ns <= elapsed_ns,
            "round {round}: spans ({span_ns} ns) exceed the measured round ({elapsed_ns} ns)"
        );
        last_ratio = span_ns as f64 / elapsed_ns as f64;
        // The phase taxonomy (wakeup / csr_patch / send / receive) must
        // cover the round path within 10%; retry to shrug off a scheduler
        // hiccup on a loaded machine.
        if last_ratio >= 0.9 {
            return;
        }
    }
    panic!(
        "phase spans cover only {:.1}% of the measured 100k-node round",
        100.0 * last_ratio
    );
}

#[test]
fn observability_is_inert_and_artifacts_validate() {
    // 1. Determinism pin: tracing cannot change any adversary's outputs.
    let col_off = coloring_outputs(false);
    let col_on = coloring_outputs(true);
    for ((name, off), (_, on)) in col_off.iter().zip(&col_on) {
        assert_eq!(off, on, "coloring outputs diverged under tracing: {name}");
    }
    let mis_off = mis_outputs(false);
    let mis_on = mis_outputs(true);
    for ((name, off), (_, on)) in mis_off.iter().zip(&mis_on) {
        assert_eq!(off, on, "MIS outputs diverged under tracing: {name}");
    }
    // The traced runs recorded spans; the untraced ones must not have.
    assert!(obs::events_len() > 0, "traced runs should record spans");
    let _ = obs::take_events();

    // 2. CSV determinism: the sweep artifact is byte-identical.
    let csv_off = sweep_csv(false);
    let csv_on = sweep_csv(true);
    assert_eq!(csv_off, csv_on, "sweep CSV changed under tracing");
    let _ = obs::take_events();

    // 3. Overhead guard: disabled tracing records nothing and the pool does
    // identical work either way.
    obs::set_enabled(false);
    let before = obs::events_len();
    let (out_off, pooled_off) = pooled_run(false);
    assert_eq!(obs::events_len(), before, "disabled spans must not record");
    assert!(obs::take_events().is_empty());
    let (out_on, pooled_on) = pooled_run(true);
    assert_eq!(out_off, out_on, "parallel outputs diverged under tracing");
    assert_eq!(
        pooled_off, pooled_on,
        "tracing changed the pool's task count"
    );
    let _ = obs::take_events();

    // 4. Artifact round-trip through the validators.
    artifact_round_trip();

    // 5. Phase-span coverage of a 100k-node round.
    span_coverage_100k();

    obs::set_enabled(false);
    let _ = obs::take_events();
}
